#include "exp/experiments.h"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdint>
#include <functional>

#include "common/math_util.h"
#include "common/thread_pool.h"
#include "data/generators.h"
#include "exp/score_model_factory.h"
#include "game/score_model.h"
#include "game/session.h"
#include "ldp/attacks.h"
#include "ldp/ldp_game.h"
#include "ldp/mechanism.h"
#include "ml/som.h"
#include "ml/svm.h"
#include "stats/metrics.h"

namespace itrim {

namespace {

// Builds the per-run game configuration shared by the ML experiments.
// The paper's MATLAB pipeline trims each round with prctile on the received
// data, i.e. removes the top (1 - T) mass fraction of the round — the
// round_mass semantics — so the ML experiments default to it.
GameConfig MakeGameConfig(int rounds, size_t round_size, double attack_ratio,
                          double tth, uint64_t seed,
                          bool round_mass_trimming = true) {
  GameConfig g;
  g.rounds = rounds;
  g.round_size = round_size;
  g.attack_ratio = attack_ratio;
  g.tth = tth;
  g.bootstrap_size = std::max<size_t>(200, round_size);
  g.round_mass_trimming = round_mass_trimming;
  g.seed = seed;
  return g;
}

// Runs `body(arm)` for every arm in [0, n) across `threads` jobs and
// returns the first (lowest-arm) reported non-OK status, or OK. Each arm
// must be self-contained: it derives its own Rng streams and writes only
// into its own result slot, so the reduction the caller performs
// afterwards — in arm order — is bit-identical to the serial loop at any
// thread count. Once any arm fails, arms not yet started are skipped (the
// whole experiment is aborted anyway); when several arms would fail, which
// one is reported may therefore vary with scheduling.
Status ParallelArms(size_t n, int threads,
                    const std::function<Status(size_t)>& body) {
  std::vector<Status> statuses(n);
  std::atomic<bool> failed{false};
  ParallelFor(
      n,
      [&](size_t arm) {
        if (failed.load(std::memory_order_relaxed)) return;
        Status s = body(arm);
        if (!s.ok()) {
          statuses[arm] = std::move(s);
          failed.store(true, std::memory_order_relaxed);
        }
      },
      threads);
  if (failed.load()) {
    for (const Status& s : statuses) {
      if (!s.ok()) return s;
    }
  }
  return Status::OK();
}

// Clamps a repetition count to [0, n]; negative configs (e.g. a bad
// ITRIM_BENCH_REPS) must degrade to zero arms, as the serial loops did,
// not wrap through size_t into a gigantic allocation.
size_t ClampReps(int repetitions) {
  return repetitions > 0 ? static_cast<size_t>(repetitions) : 0;
}

}  // namespace

// ---------------------------------------------------------------------------
// Fig 4 / Fig 5 — k-means
// ---------------------------------------------------------------------------

Result<KmeansExperimentResult> RunKmeansExperiment(
    const KmeansExperimentConfig& config) {
  Dataset data;
  ITRIM_ASSIGN_OR_RETURN(
      data, MakeByName(config.dataset, config.seed, config.dataset_scale));

  Rng rng(config.seed ^ 0xABCDEF12345ULL);
  Dataset eval_set = SampleWithReplacement(data, config.eval_size, &rng);

  KMeansConfig km;
  km.k = data.num_clusters;
  km.restarts = 3;
  km.seed = config.seed ^ 0x5555AAAAULL;

  // Ground-truth model from clean data of the same volume a scheme retains
  // (rounds x round_size resamples), so SSE comparisons are size-matched.
  Dataset gt_train = SampleWithReplacement(
      data, static_cast<size_t>(config.rounds) * config.round_size, &rng);
  KMeansResult gt;
  ITRIM_ASSIGN_OR_RETURN(gt, KMeans(gt_train.rows, km));
  KmeansExperimentResult result;
  result.groundtruth_sse = EvaluateSse(eval_set.rows, gt.centroids);

  // Every (scheme, ratio, repetition) arm is independent: it builds its own
  // strategies, game and model from arm-local seeds and reads the shared
  // datasets only. Fan all arms out at once and reduce in loop order.
  const std::vector<SchemeId> schemes = PlottedSchemes();
  const size_t n_ratios = config.attack_ratios.size();
  const size_t n_reps = ClampReps(config.repetitions);
  struct ArmOut {
    double sse = 0.0;
    double distance = 0.0;
  };
  std::vector<ArmOut> arms(schemes.size() * n_ratios * n_reps);

  Status run_status = ParallelArms(
      arms.size(), config.threads, [&](size_t arm) -> Status {
        const int rep = static_cast<int>(arm % n_reps);
        const double ratio = config.attack_ratios[(arm / n_reps) % n_ratios];
        const SchemeId id = schemes[arm / (n_reps * n_ratios)];

        SchemeOptions opts;
        opts.seed = config.seed + static_cast<uint64_t>(rep) * 7919;
        SchemeInstance scheme = MakeScheme(id, config.tth, opts);
        GameConfig game_config = MakeGameConfig(
            config.rounds, config.round_size, ratio, config.tth,
            config.seed + static_cast<uint64_t>(rep) * 104729 +
                static_cast<uint64_t>(id) * 31 +
                static_cast<uint64_t>(ratio * 10000.0) * 131);
        // Experiments go through the factory-driven scheme runner (the
        // batch adapters are bit-identical sugar over the same session).
        std::unique_ptr<ScoreModel> game_model;
        ITRIM_RETURN_NOT_OK(
            RunSchemeSession(game_config, &scheme, ModelKind::kDistance,
                             DistanceInputs(&data), &game_model)
                .status());
        const Dataset& retained =
            static_cast<const DistanceScoreModel&>(*game_model)
                .retained_data();
        if (retained.rows.size() < km.k) {
          return Status::Internal("scheme " + SchemeName(id) +
                                  " retained too few rows");
        }
        KMeansConfig km_run = km;
        km_run.seed = km.seed + static_cast<uint64_t>(rep) * 13;
        KMeansResult model;
        ITRIM_ASSIGN_OR_RETURN(model, KMeans(retained.rows, km_run));
        arms[arm].sse = EvaluateSse(eval_set.rows, model.centroids);
        arms[arm].distance =
            CentroidSetDistance(model.centroids, gt.centroids);
        return Status::OK();
      });
  ITRIM_RETURN_NOT_OK(run_status);

  size_t arm = 0;
  for (SchemeId id : schemes) {
    KmeansSeries series;
    series.scheme = SchemeName(id);
    for (size_t ri = 0; ri < n_ratios; ++ri) {
      double sse_acc = 0.0, dist_acc = 0.0;
      for (size_t rep = 0; rep < n_reps; ++rep, ++arm) {
        sse_acc += arms[arm].sse;
        dist_acc += arms[arm].distance;
      }
      KmeansPoint point;
      point.attack_ratio = config.attack_ratios[ri];
      point.sse = sse_acc / config.repetitions;
      point.distance = dist_acc / config.repetitions;
      series.points.push_back(point);
    }
    result.series.push_back(std::move(series));
  }
  return result;
}

// ---------------------------------------------------------------------------
// Fig 6a / Fig 7 — SVM
// ---------------------------------------------------------------------------

Result<SvmExperimentResult> RunSvmExperiment(const SvmExperimentConfig& c) {
  Dataset data = MakeControl(c.seed, std::max<size_t>(
                                        3, static_cast<size_t>(
                                               100 * c.dataset_scale)));
  SvmConfig svm_config;
  svm_config.c = 1.0;
  svm_config.seed = c.seed ^ 0x77;

  SvmExperimentResult result;
  {
    LinearSvm gt_model;
    ITRIM_ASSIGN_OR_RETURN(gt_model, LinearSvm::Train(data, svm_config));
    result.groundtruth_accuracy = gt_model.Evaluate(data);
    ConfusionMatrix cm(data.num_clusters);
    for (size_t i = 0; i < data.rows.size(); ++i) {
      cm.Add(static_cast<size_t>(data.labels[i]),
             static_cast<size_t>(gt_model.Predict(data.rows[i])));
    }
    for (size_t cls = 0; cls < data.num_clusters; ++cls) {
      result.groundtruth_ppv.push_back(cm.Ppv(cls));
    }
  }

  const std::vector<SchemeId> schemes = PlottedSchemes();
  const size_t n_reps = ClampReps(c.repetitions);
  struct ArmOut {
    double accuracy = 0.0;
    ConfusionMatrix cm;
    explicit ArmOut(size_t classes) : cm(classes) {}
  };
  std::vector<ArmOut> arms(schemes.size() * n_reps,
                           ArmOut(data.num_clusters));

  Status run_status = ParallelArms(
      arms.size(), c.threads, [&](size_t arm) -> Status {
        const int rep = static_cast<int>(arm % n_reps);
        const SchemeId id = schemes[arm / n_reps];

        SchemeOptions opts;
        opts.seed = c.seed + static_cast<uint64_t>(rep) * 7919;
        SchemeInstance scheme = MakeScheme(id, c.tth, opts);
        GameConfig game_config = MakeGameConfig(
            c.rounds, c.round_size, c.attack_ratio, c.tth,
            c.seed + static_cast<uint64_t>(rep) * 104729 +
                static_cast<uint64_t>(id) * 61);
        std::unique_ptr<ScoreModel> game_model;
        ITRIM_RETURN_NOT_OK(
            RunSchemeSession(game_config, &scheme, ModelKind::kDistance,
                             DistanceInputs(&data), &game_model)
                .status());
        LinearSvm model;
        ITRIM_ASSIGN_OR_RETURN(
            model,
            LinearSvm::Train(static_cast<const DistanceScoreModel&>(
                                 *game_model)
                                 .retained_data(),
                             svm_config));
        arms[arm].accuracy = model.Evaluate(data);
        for (size_t i = 0; i < data.rows.size(); ++i) {
          arms[arm].cm.Add(static_cast<size_t>(data.labels[i]),
                           static_cast<size_t>(model.Predict(data.rows[i])));
        }
        return Status::OK();
      });
  ITRIM_RETURN_NOT_OK(run_status);

  size_t arm = 0;
  for (SchemeId id : schemes) {
    SvmSchemeResult scheme_result;
    scheme_result.scheme = SchemeName(id);
    double acc_sum = 0.0;
    ConfusionMatrix cm(data.num_clusters);
    for (size_t rep = 0; rep < n_reps; ++rep, ++arm) {
      acc_sum += arms[arm].accuracy;
      cm.Merge(arms[arm].cm);
    }
    scheme_result.accuracy = acc_sum / c.repetitions;
    for (size_t cls = 0; cls < data.num_clusters; ++cls) {
      scheme_result.class_ppv.push_back(cm.Ppv(cls));
    }
    result.schemes.push_back(std::move(scheme_result));
  }
  return result;
}

// ---------------------------------------------------------------------------
// Fig 6b / Fig 8 — SOM
// ---------------------------------------------------------------------------

Result<SomExperimentResult> RunSomExperiment(const SomExperimentConfig& c) {
  Dataset data = MakeCreditcard(c.seed, c.dataset_size);
  SomConfig som_config;
  som_config.width = c.grid;
  som_config.height = c.grid;
  som_config.epochs = c.epochs;
  som_config.seed = c.seed ^ 0x5050;

  SomExperimentResult result;
  {
    Som gt_som;
    ITRIM_ASSIGN_OR_RETURN(gt_som, Som::Train(data, som_config));
    result.groundtruth_classes = gt_som.ClassesRepresented(data);
    result.groundtruth_qe = gt_som.QuantizationError(data.rows);
  }

  const std::vector<SchemeId> schemes = PlottedSchemes();
  const size_t n_reps = ClampReps(c.repetitions);
  struct ArmOut {
    double untrimmed_poison_fraction = 0.0;
    double green = 0.0, fraud = 0.0, premium = 0.0;
    double classes_represented = 0.0;
    double quantization_error = 0.0;
  };
  std::vector<ArmOut> arms(schemes.size() * n_reps);

  Status run_status = ParallelArms(
      arms.size(), c.threads, [&](size_t arm) -> Status {
        const int rep = static_cast<int>(arm % n_reps);
        const SchemeId id = schemes[arm / n_reps];

        SchemeOptions opts;
        opts.seed = c.seed * 3 + static_cast<uint64_t>(id) +
                    static_cast<uint64_t>(rep) * 7919;
        SchemeInstance scheme = MakeScheme(id, c.tth, opts);
        GameConfig game_config = MakeGameConfig(
            c.rounds, c.round_size, c.attack_ratio, c.tth,
            c.seed + static_cast<uint64_t>(id) * 101 +
                static_cast<uint64_t>(rep) * 104729);
        std::unique_ptr<ScoreModel> game_model_owner;
        GameSummary summary;
        ITRIM_ASSIGN_OR_RETURN(
            summary,
            RunSchemeSession(game_config, &scheme, ModelKind::kDistance,
                             DistanceInputs(&data), &game_model_owner));
        const auto& game_model =
            static_cast<const DistanceScoreModel&>(*game_model_owner);

        arms[arm].untrimmed_poison_fraction =
            summary.UntrimmedPoisonFraction();
        const Dataset& retained = game_model.retained_data();
        const auto& poison_mask = game_model.retained_is_poison();
        bool green = false, fraud = false, premium = false;
        for (size_t i = 0; i < retained.rows.size(); ++i) {
          if (poison_mask[i]) continue;
          if (retained.labels[i] == 1) fraud = true;
          if (retained.labels[i] == 2) premium = true;
          if (retained.labels[i] == 3) green = true;
        }
        arms[arm].green = green ? 1.0 : 0.0;
        arms[arm].fraud = fraud ? 1.0 : 0.0;
        arms[arm].premium = premium ? 1.0 : 0.0;

        SomConfig rep_som = som_config;
        rep_som.seed = som_config.seed + static_cast<uint64_t>(rep) * 31;
        Som model;
        ITRIM_ASSIGN_OR_RETURN(model, Som::Train(retained, rep_som));
        // Structure preservation is judged by mapping the *clean* data
        // through the scheme-trained map.
        arms[arm].classes_represented =
            static_cast<double>(model.ClassesRepresented(data));
        arms[arm].quantization_error = model.QuantizationError(data.rows);
        return Status::OK();
      });
  ITRIM_RETURN_NOT_OK(run_status);

  size_t arm = 0;
  for (SchemeId id : schemes) {
    SomSchemeResult r;
    r.scheme = SchemeName(id);
    for (size_t rep = 0; rep < n_reps; ++rep, ++arm) {
      r.untrimmed_poison_fraction += arms[arm].untrimmed_poison_fraction;
      r.green_class_survives += arms[arm].green;
      r.fraud_point_survives += arms[arm].fraud;
      r.premium_point_survives += arms[arm].premium;
      r.classes_represented += arms[arm].classes_represented;
      r.quantization_error += arms[arm].quantization_error;
    }
    double inv = 1.0 / static_cast<double>(c.repetitions);
    r.untrimmed_poison_fraction *= inv;
    r.green_class_survives *= inv;
    r.fraud_point_survives *= inv;
    r.premium_point_survives *= inv;
    r.classes_represented *= inv;
    r.quantization_error *= inv;
    result.schemes.push_back(std::move(r));
  }
  return result;
}

// ---------------------------------------------------------------------------
// Table III — non-equilibrium mixed strategies
// ---------------------------------------------------------------------------

Result<std::vector<NonEquilibriumRow>> RunNonEquilibriumExperiment(
    const NonEquilibriumConfig& config, const std::vector<double>& ps) {
  Dataset data = MakeControl(config.seed);

  const size_t n_reps = ClampReps(config.repetitions);
  struct ArmOut {
    double termination = 0.0;
    double titfortat_untrimmed = 0.0;
    double elastic_untrimmed = 0.0;
  };
  std::vector<ArmOut> arms(ps.size() * n_reps);

  Status run_status = ParallelArms(
      arms.size(), config.threads, [&](size_t arm) -> Status {
        const int rep = static_cast<int>(arm % n_reps);
        const double p = ps[arm / n_reps];

        uint64_t seed = config.seed + static_cast<uint64_t>(rep) * 92821 +
                        static_cast<uint64_t>(p * 1000.0);
        GameConfig game_config = MakeGameConfig(
            config.rounds, config.round_size, config.attack_ratio,
            config.tth, seed, /*round_mass_trimming=*/true);

        // Titfortat: untriggered soft trim at Tth + 1%; once the judgement
        // fires, trims at the 90th percentile permanently (Section VI-D).
        double trigger_quality = p - config.redundancy;
        TitfortatCollector titfortat(+0.01, 0.90 - config.tth,
                                     trigger_quality);
        MixedPercentileAdversary adversary_tft(p);
        NoisyDefectShareQuality quality(
            0.90, 0.99, config.sigma0, config.sigma_tail, seed ^ 0xBEEF,
            DefectShareQuality::CutoffMode::kAbsolute);
        ITRIM_ASSIGN_OR_RETURN(
            std::unique_ptr<ScoreModel> model_tft,
            MakeScoreModel(ModelKind::kDistance, DistanceInputs(&data)));
        TrimmingSession game_tft(game_config, model_tft.get(), &titfortat,
                                 &adversary_tft, &quality);
        GameSummary tft;
        ITRIM_ASSIGN_OR_RETURN(tft, game_tft.RunToCompletion());
        arms[arm].termination =
            tft.termination_round > 0
                ? static_cast<double>(tft.termination_round)
                : static_cast<double>(config.rounds);
        arms[arm].titfortat_untrimmed = tft.UntrimmedPoisonFraction();

        // Elastic: adapts the threshold to the observed injection position.
        ElasticCollector elastic(config.elastic_k);
        MixedPercentileAdversary adversary_ela(p);
        GameConfig elastic_config = game_config;
        elastic_config.seed = seed ^ 0xD00D;
        ITRIM_ASSIGN_OR_RETURN(
            std::unique_ptr<ScoreModel> model_ela,
            MakeScoreModel(ModelKind::kDistance, DistanceInputs(&data)));
        TrimmingSession game_ela(elastic_config, model_ela.get(), &elastic,
                                 &adversary_ela, nullptr);
        GameSummary ela;
        ITRIM_ASSIGN_OR_RETURN(ela, game_ela.RunToCompletion());
        arms[arm].elastic_untrimmed = ela.UntrimmedPoisonFraction();
        return Status::OK();
      });
  ITRIM_RETURN_NOT_OK(run_status);

  std::vector<NonEquilibriumRow> rows;
  size_t arm = 0;
  for (double p : ps) {
    NonEquilibriumRow row;
    row.p = p;
    double term_acc = 0.0, tft_acc = 0.0, ela_acc = 0.0;
    for (size_t rep = 0; rep < n_reps; ++rep, ++arm) {
      term_acc += arms[arm].termination;
      tft_acc += arms[arm].titfortat_untrimmed;
      ela_acc += arms[arm].elastic_untrimmed;
    }
    row.avg_termination_round = term_acc / config.repetitions;
    row.titfortat_untrimmed = tft_acc / config.repetitions;
    row.elastic_untrimmed = ela_acc / config.repetitions;
    rows.push_back(row);
  }
  return rows;
}

// ---------------------------------------------------------------------------
// Table IV — Elastic roundwise cost
// ---------------------------------------------------------------------------

ElasticTrace TraceElasticDynamics(double k, int rounds) {
  ElasticTrace trace;
  // Offsets from Tth; Section VI-A initial conditions.
  double t = -0.03;  // T(1) = Tth - 3%
  double a = +0.01;  // A(1) = Tth + 1%
  for (int i = 0; i < rounds; ++i) {
    trace.collector.push_back(t);
    trace.adversary.push_back(a);
    double t_next = k * (a - 0.01);   // T(i+1) = Tth + k (A(i) - Tth - 1%)
    double a_next = -0.03 + k * t;    // A(i+1) = Tth - 3% + k (T(i) - Tth)
    t = t_next;
    a = a_next;
  }
  // Fixed point of the coupled recurrence.
  trace.fixed_point_adversary = -(0.03 + 0.01 * k * k) / (1.0 - k * k);
  trace.fixed_point_collector = k * (trace.fixed_point_adversary - 0.01);
  return trace;
}

double ElasticRoundwiseCost(double k, int rounds) {
  ElasticTrace trace = TraceElasticDynamics(k, rounds);
  double acc = 0.0;
  for (double a : trace.adversary) {
    acc += std::fabs(a - trace.fixed_point_adversary);
  }
  return acc / static_cast<double>(rounds);
}

// ---------------------------------------------------------------------------
// Fig 9 — LDP vs EMF
// ---------------------------------------------------------------------------

Result<LdpExperimentResult> RunLdpExperiment(const LdpExperimentConfig& c) {
  Dataset taxi = MakeTaxi(c.seed, c.population_size);
  std::vector<double> population;
  population.reserve(taxi.rows.size());
  for (const auto& row : taxi.rows) population.push_back(row[0]);

  LdpExperimentResult result;
  result.epsilons = c.epsilons;

  struct SchemeSpec {
    std::string name;
    double elastic_k;  // <0 = Titfortat, >=0 = Elastic, NaN = EMF
  };
  const std::vector<SchemeSpec> specs = {
      {"Titfortat", -1.0},
      {"Elastic0.1", 0.1},
      {"Elastic0.5", 0.5},
      {"EMF", std::nan("")},
  };

  const size_t n_eps = c.epsilons.size();
  const size_t n_reps = ClampReps(c.repetitions);
  std::vector<double> arms(specs.size() * n_eps * n_reps, 0.0);

  // Mechanism construction is a pure function of (name, ε), so each arm
  // builds its own copy instead of sharing one across repetitions.
  Status run_status = ParallelArms(
      arms.size(), c.threads, [&](size_t arm) -> Status {
        const int rep = static_cast<int>(arm % n_reps);
        const double eps = c.epsilons[(arm / n_reps) % n_eps];
        const SchemeSpec& spec = specs[arm / (n_reps * n_eps)];

        std::unique_ptr<LdpMechanism> mechanism;
        ITRIM_ASSIGN_OR_RETURN(mechanism, MakeMechanism(c.mechanism, eps));
        LdpGameConfig game_config;
        game_config.rounds = c.rounds;
        game_config.users_per_round = c.users_per_round;
        game_config.attack_ratio = c.attack_ratio;
        game_config.tth = c.tth;
        game_config.bootstrap_size = c.users_per_round;
        game_config.seed = c.seed + static_cast<uint64_t>(rep) * 65537 +
                           static_cast<uint64_t>(eps * 1000.0);
        InputManipulationAttack attack(1.0);
        LdpCollectionGame game(game_config, &population, mechanism.get(),
                               &attack);
        LdpRunResult run;
        if (std::isnan(spec.elastic_k)) {
          ITRIM_ASSIGN_OR_RETURN(run, game.RunEmf(EmfConfig{}));
        } else if (spec.elastic_k < 0.0) {
          TitfortatCollector collector(+0.01, -0.03, /*never triggers*/ -1.0);
          TailMassQuality quality(c.tth);
          ITRIM_ASSIGN_OR_RETURN(run,
                                 game.RunTrimming(&collector, &quality));
        } else {
          ElasticCollector collector(spec.elastic_k);
          ITRIM_ASSIGN_OR_RETURN(run,
                                 game.RunTrimming(&collector, nullptr));
        }
        arms[arm] = run.squared_error;
        return Status::OK();
      });
  ITRIM_RETURN_NOT_OK(run_status);

  size_t arm = 0;
  for (const auto& spec : specs) {
    LdpSeries series;
    series.scheme = spec.name;
    for (size_t ei = 0; ei < n_eps; ++ei) {
      double mse_acc = 0.0;
      for (size_t rep = 0; rep < n_reps; ++rep, ++arm) {
        mse_acc += arms[arm];
      }
      series.mse.push_back(mse_acc / c.repetitions);
    }
    result.series.push_back(std::move(series));
  }
  return result;
}

}  // namespace itrim
