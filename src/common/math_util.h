// Small numeric helpers shared across the library.
#ifndef ITRIM_COMMON_MATH_UTIL_H_
#define ITRIM_COMMON_MATH_UTIL_H_

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <span>
#include <vector>

namespace itrim {

/// \brief Clamps `x` into [lo, hi].
inline double Clamp(double x, double lo, double hi) {
  return std::max(lo, std::min(hi, x));
}

/// \brief True iff |a - b| <= atol + rtol * max(|a|, |b|).
inline bool AlmostEqual(double a, double b, double atol = 1e-9,
                        double rtol = 1e-9) {
  return std::fabs(a - b) <= atol + rtol * std::max(std::fabs(a), std::fabs(b));
}

/// \brief Squared Euclidean distance between equal-length spans, in the
/// library's canonical fixed 4-lane association (game/kernels.h) so scalar
/// and batched evaluations produce bit-identical doubles.
double SquaredDistance(std::span<const double> a, std::span<const double> b);

/// \brief Euclidean distance between equal-length spans.
double EuclideanDistance(std::span<const double> a, std::span<const double> b);

/// \brief Euclidean norm of a vector.
double Norm(const std::vector<double>& v);

/// \brief Dot product of equal-length vectors.
double Dot(const std::vector<double>& a, const std::vector<double>& b);

/// \brief a += scale * b (in place, equal lengths).
void Axpy(double scale, const std::vector<double>& b, std::vector<double>* a);

/// \brief Arithmetic mean; 0 for an empty range.
double Mean(const std::vector<double>& v);

/// \brief Population variance; 0 for fewer than 2 elements.
double Variance(const std::vector<double>& v);

/// \brief Component-wise mean of a set of equal-length vectors.
std::vector<double> Centroid(const std::vector<std::vector<double>>& points);

/// \brief Linear interpolation between a and b at t in [0,1].
inline double Lerp(double a, double b, double t) { return a + (b - a) * t; }

/// \brief Evenly spaced values from lo to hi inclusive (n >= 2).
std::vector<double> Linspace(double lo, double hi, size_t n);

}  // namespace itrim

#endif  // ITRIM_COMMON_MATH_UTIL_H_
