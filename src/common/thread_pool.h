// Work-sharing thread pool and the ParallelFor primitive built on it.
//
// The experiment pipelines (exp/experiments.cc) are embarrassingly parallel
// across repetitions: every repetition derives its own Rng stream from
// `seed + rep`, so repetitions can run on any thread in any order as long as
// their results are merged back in repetition order. ParallelFor provides
// exactly that contract:
//
//   * body(i) is invoked exactly once for every i in [0, n), on an
//     unspecified thread;
//   * callers store per-index results into pre-sized slots and reduce them
//     in index order afterwards, which makes the output bit-identical to a
//     serial `for` loop at any thread count;
//   * the first (lowest-index) exception thrown by a body is rethrown on the
//     calling thread once all in-flight work has drained.
//
// Thread count resolution: an explicit `num_jobs` argument wins, otherwise
// the ITRIM_THREADS environment variable, otherwise the hardware
// concurrency. `num_jobs == 1` runs inline on the caller with no pool
// involvement, so a pool of one is the serial path by construction.
#ifndef ITRIM_COMMON_THREAD_POOL_H_
#define ITRIM_COMMON_THREAD_POOL_H_

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <functional>
#include <future>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace itrim {

namespace obs {
class MetricSlot;
}  // namespace obs

/// \brief Fixed-size pool of worker threads consuming a FIFO task queue.
class ThreadPool {
 public:
  /// Spawns `num_threads` workers (clamped to at least 1).
  explicit ThreadPool(int num_threads);

  /// Drains the queue and joins all workers (via Shutdown()).
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// \brief Enqueues `fn`; the future resolves when it has run (or carries
  /// its exception). After Shutdown() the task runs inline on the calling
  /// thread instead — a task enqueued while the workers are exiting would
  /// otherwise be silently dropped and its future would never resolve
  /// (tests/common/thread_pool_test.cc pins this).
  std::future<void> Submit(std::function<void()> fn);

  /// \brief Stops accepting queued execution, drains already-queued tasks
  /// and joins all workers. Idempotent; not safe to race with itself from
  /// two threads (the destructor is the usual caller).
  void Shutdown();

  /// \brief Number of worker threads.
  int num_threads() const { return static_cast<int>(workers_.size()); }

  /// \brief Process-wide shared pool, lazily created with
  /// DefaultNumThreads() workers. Never returns null.
  static ThreadPool* Global();

  /// \brief True when the calling thread is one of this process's pool
  /// workers (used to serialize nested ParallelFor calls).
  static bool InWorker();

  /// \brief Attaches a borrowed metric slot (src/obs/): workers then count
  /// executed tasks, record per-task wall time and accumulate parked idle
  /// nanoseconds. Null detaches. Safe to call while workers run (the
  /// pointer is read atomically per dequeue); with no slot attached the
  /// worker loop takes no timestamps at all.
  void AttachMetrics(obs::MetricSlot* slot) {
    metrics_.store(slot, std::memory_order_release);
  }

 private:
  void WorkerLoop();

  std::mutex mu_;
  std::condition_variable cv_;
  std::queue<std::packaged_task<void()>> queue_;
  bool stop_ = false;
  std::vector<std::thread> workers_;
  std::atomic<obs::MetricSlot*> metrics_{nullptr};
};

/// \brief Resolves the default parallelism: ITRIM_THREADS when set to a
/// positive integer, otherwise std::thread::hardware_concurrency(), never
/// less than 1.
int DefaultNumThreads();

/// \brief Runs body(i) for every i in [0, n) across up to `num_jobs`
/// threads (0 = DefaultNumThreads()).
///
/// Indices are claimed dynamically from a shared counter, so bodies of
/// uneven cost balance across threads. The call returns only after every
/// invoked body has finished. Exceptions: if any body throws, remaining
/// unclaimed indices are abandoned and the pending exception with the
/// lowest index is rethrown here. Nested calls from inside a pool worker
/// run serially inline (the pool cannot wait on itself).
void ParallelFor(size_t n, const std::function<void(size_t)>& body,
                 int num_jobs = 0);

/// \brief Runs body(begin, end) over contiguous shards covering [0, n).
///
/// A shard is one scheduling unit: for fleets of thousands of cheap,
/// same-shaped items (e.g. one session round per item), claiming them one
/// by one through ParallelFor's shared counter spends more time on the
/// atomic than on the work. Sharding amortizes the claim over `shard_size`
/// items while keeping the same determinism contract — shard boundaries
/// are a pure function of (n, shard_size), every index is visited exactly
/// once, and callers still reduce per-index slots in index order.
/// `shard_size == 0` picks a size that yields ~4 shards per job (enough
/// slack for dynamic balancing without counter contention).
void ParallelForShards(size_t n, size_t shard_size,
                       const std::function<void(size_t, size_t)>& body,
                       int num_jobs = 0);

}  // namespace itrim

#endif  // ITRIM_COMMON_THREAD_POOL_H_
