#include "common/rng.h"

#include <cassert>

namespace itrim {

Rng::Rng(uint64_t seed) {
  SplitMix64 sm(seed);
  for (auto& word : s_) word = sm.Next();
}

uint64_t Rng::NextU64() {
  const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

double Rng::Uniform() {
  // 53 high bits -> double in [0,1).
  return static_cast<double>(NextU64() >> 11) * 0x1.0p-53;
}

double Rng::Uniform(double lo, double hi) { return lo + (hi - lo) * Uniform(); }

uint64_t Rng::UniformInt(uint64_t n) {
  assert(n > 0);
  // Rejection sampling to remove modulo bias.
  const uint64_t threshold = (0ULL - n) % n;
  for (;;) {
    uint64_t r = NextU64();
    if (r >= threshold) return r % n;
  }
}

void Rng::FillUniformInt(uint64_t n, uint64_t* out, size_t count) {
  assert(n > 0);
  // Hoisted UniformInt loop: the rejection threshold is computed once and
  // the per-call entry/exit disappears, but every word of output comes from
  // the exact NextU64 sequence the scalar calls would consume.
  const uint64_t threshold = (0ULL - n) % n;
  for (size_t i = 0; i < count; ++i) {
    for (;;) {
      uint64_t r = NextU64();
      if (r >= threshold) {
        out[i] = r % n;
        break;
      }
    }
  }
}

void Rng::FillUniform(double* out, size_t count) {
  for (size_t i = 0; i < count; ++i) {
    out[i] = static_cast<double>(NextU64() >> 11) * 0x1.0p-53;
  }
}

double Rng::Normal() {
  if (have_cached_normal_) {
    have_cached_normal_ = false;
    return cached_normal_;
  }
  // Box–Muller; u1 in (0,1] to avoid log(0).
  double u1 = 1.0 - Uniform();
  double u2 = Uniform();
  double mag = std::sqrt(-2.0 * std::log(u1));
  double two_pi_u2 = 2.0 * M_PI * u2;
  cached_normal_ = mag * std::sin(two_pi_u2);
  have_cached_normal_ = true;
  return mag * std::cos(two_pi_u2);
}

double Rng::Normal(double mean, double stddev) {
  return mean + stddev * Normal();
}

double Rng::Laplace(double b) {
  double u = Uniform() - 0.5;
  double sign = (u < 0.0) ? -1.0 : 1.0;
  return -b * sign * std::log(1.0 - 2.0 * std::fabs(u));
}

bool Rng::Bernoulli(double p) { return Uniform() < p; }

double Rng::Exponential(double lambda) {
  return -std::log(1.0 - Uniform()) / lambda;
}

size_t Rng::Categorical(const std::vector<double>& weights) {
  double total = 0.0;
  for (double w : weights) total += w;
  if (total <= 0.0) return weights.size();
  double r = Uniform() * total;
  double acc = 0.0;
  for (size_t i = 0; i < weights.size(); ++i) {
    acc += weights[i];
    if (r < acc) return i;
  }
  return weights.size() - 1;
}

std::vector<double> Rng::UnitVector(size_t dim) {
  std::vector<double> v;
  UnitVectorInto(dim, &v);
  return v;
}

void Rng::UnitVectorInto(size_t dim, std::vector<double>* out) {
  std::vector<double>& v = *out;
  v.resize(dim);
  double norm_sq = 0.0;
  do {
    norm_sq = 0.0;
    for (size_t i = 0; i < dim; ++i) {
      v[i] = Normal();
      norm_sq += v[i] * v[i];
    }
  } while (norm_sq == 0.0);
  double inv = 1.0 / std::sqrt(norm_sq);
  for (double& x : v) x *= inv;
}

std::vector<size_t> Rng::SampleWithoutReplacement(size_t n, size_t k) {
  assert(k <= n);
  // Floyd's algorithm is O(k) in expectation but needs a set; for the sizes
  // used here a partial Fisher–Yates over an index vector is simpler.
  std::vector<size_t> idx(n);
  for (size_t i = 0; i < n; ++i) idx[i] = i;
  for (size_t i = 0; i < k; ++i) {
    size_t j = i + static_cast<size_t>(UniformInt(n - i));
    std::swap(idx[i], idx[j]);
  }
  idx.resize(k);
  return idx;
}

Rng Rng::Fork() { return Rng(NextU64() ^ 0xA3EC647659359ACDULL); }

}  // namespace itrim
