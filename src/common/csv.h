// Minimal CSV reading/writing for numeric matrices.
//
// Used by the dataset loader so that the real UCI/Kaggle/OpenML files can be
// dropped in as a substitute for the built-in synthetic generators.
#ifndef ITRIM_COMMON_CSV_H_
#define ITRIM_COMMON_CSV_H_

#include <string>
#include <vector>

#include "common/status.h"

namespace itrim {

/// \brief Parses a CSV file of doubles into row-major form.
///
/// Blank lines are skipped. If `skip_header` is true the first non-blank line
/// is dropped. Every remaining row must have the same number of fields and
/// every field must parse as a double.
Result<std::vector<std::vector<double>>> ReadCsv(const std::string& path,
                                                 bool skip_header = false);

/// \brief Writes a row-major matrix as CSV with an optional header line.
Status WriteCsv(const std::string& path,
                const std::vector<std::vector<double>>& rows,
                const std::vector<std::string>& header = {});

/// \brief Splits one CSV line on commas (no quoting support; numeric data).
std::vector<std::string> SplitCsvLine(const std::string& line);

}  // namespace itrim

#endif  // ITRIM_COMMON_CSV_H_
