#include "common/math_util.h"

#include <cassert>

#include "game/kernels.h"

namespace itrim {

double SquaredDistance(std::span<const double> a, std::span<const double> b) {
  assert(a.size() == b.size());
  // The canonical distance is the kernel's fixed 4-lane association (see
  // game/kernels.h); every call site — scalar scoring, PositionMap
  // geometry, batched ScoreInto — therefore agrees bit for bit.
  return kernels::SquaredDistance(a.data(), b.data(), a.size());
}

double EuclideanDistance(std::span<const double> a, std::span<const double> b) {
  return std::sqrt(SquaredDistance(a, b));
}

double Norm(const std::vector<double>& v) {
  double acc = 0.0;
  for (double x : v) acc += x * x;
  return std::sqrt(acc);
}

double Dot(const std::vector<double>& a, const std::vector<double>& b) {
  assert(a.size() == b.size());
  double acc = 0.0;
  for (size_t i = 0; i < a.size(); ++i) acc += a[i] * b[i];
  return acc;
}

void Axpy(double scale, const std::vector<double>& b, std::vector<double>* a) {
  assert(a->size() == b.size());
  for (size_t i = 0; i < b.size(); ++i) (*a)[i] += scale * b[i];
}

double Mean(const std::vector<double>& v) {
  if (v.empty()) return 0.0;
  double acc = 0.0;
  for (double x : v) acc += x;
  return acc / static_cast<double>(v.size());
}

double Variance(const std::vector<double>& v) {
  if (v.size() < 2) return 0.0;
  double m = Mean(v);
  double acc = 0.0;
  for (double x : v) {
    double d = x - m;
    acc += d * d;
  }
  return acc / static_cast<double>(v.size());
}

std::vector<double> Centroid(const std::vector<std::vector<double>>& points) {
  if (points.empty()) return {};
  std::vector<double> c(points[0].size(), 0.0);
  for (const auto& p : points) Axpy(1.0, p, &c);
  double inv = 1.0 / static_cast<double>(points.size());
  for (double& x : c) x *= inv;
  return c;
}

std::vector<double> Linspace(double lo, double hi, size_t n) {
  assert(n >= 2);
  std::vector<double> out(n);
  double step = (hi - lo) / static_cast<double>(n - 1);
  for (size_t i = 0; i < n; ++i) out[i] = lo + step * static_cast<double>(i);
  out.back() = hi;
  return out;
}

}  // namespace itrim
