// Deterministic, seedable random number generation.
//
// All stochastic components of the library (dataset generators, adversaries,
// LDP mechanisms, k-means seeding, ...) draw from `Rng` so that every
// experiment is reproducible from a single 64-bit seed. The core generator is
// xoshiro256** (Blackman & Vigna), seeded through SplitMix64; both are public
// domain algorithms, re-implemented here to avoid a dependency and to keep
// streams identical across platforms (unlike std::mt19937 + distributions,
// whose std::normal_distribution output is implementation-defined).
#ifndef ITRIM_COMMON_RNG_H_
#define ITRIM_COMMON_RNG_H_

#include <array>
#include <cmath>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace itrim {

/// \brief SplitMix64 generator; used to expand seeds and as a cheap stream.
class SplitMix64 {
 public:
  explicit SplitMix64(uint64_t seed) : state_(seed) {}

  /// \brief Next 64 random bits.
  uint64_t Next() {
    uint64_t z = (state_ += 0x9E3779B97F4A7C15ULL);
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
    return z ^ (z >> 31);
  }

 private:
  uint64_t state_;
};

/// \brief Deterministic xoshiro256** PRNG with distribution helpers.
///
/// Not thread-safe; create one instance per thread / per experiment arm.
class Rng {
 public:
  /// Seeds the generator; identical seeds yield identical streams on all
  /// platforms.
  explicit Rng(uint64_t seed = 0xD1B54A32D192ED03ULL);

  /// \brief Next 64 uniformly random bits.
  uint64_t NextU64();

  /// \brief Uniform double in [0, 1).
  double Uniform();

  /// \brief Uniform double in [lo, hi).
  double Uniform(double lo, double hi);

  /// \brief Uniform integer in [0, n). Requires n > 0.
  uint64_t UniformInt(uint64_t n);

  /// \brief Fills out[0..count) with draws bit-identical to `count`
  /// successive UniformInt(n) calls. One call per round amortizes the
  /// per-draw call overhead in the streaming hot path without perturbing
  /// the stream (the batch IS the sequence of scalar draws).
  void FillUniformInt(uint64_t n, uint64_t* out, size_t count);

  /// \brief Fills out[0..count) with draws bit-identical to `count`
  /// successive Uniform() calls.
  void FillUniform(double* out, size_t count);

  /// \brief Standard normal deviate (Box–Muller, cached pair).
  double Normal();

  /// \brief Normal deviate with the given mean and standard deviation.
  double Normal(double mean, double stddev);

  /// \brief Laplace deviate with location 0 and scale `b` (inverse CDF).
  double Laplace(double b);

  /// \brief Bernoulli trial with success probability `p`.
  bool Bernoulli(double p);

  /// \brief Exponential deviate with rate `lambda`.
  double Exponential(double lambda);

  /// \brief Random index drawn proportionally to non-negative `weights`.
  /// Returns weights.size() when the total weight is zero.
  size_t Categorical(const std::vector<double>& weights);

  /// \brief Random unit vector of dimension `dim` (uniform on the sphere).
  std::vector<double> UnitVector(size_t dim);

  /// \brief UnitVector into caller-owned storage (resized to `dim`, capacity
  /// reused); the draw sequence is identical to UnitVector(dim).
  void UnitVectorInto(size_t dim, std::vector<double>* out);

  /// \brief Fisher–Yates shuffle of `v`.
  template <typename T>
  void Shuffle(std::vector<T>* v) {
    if (v->empty()) return;
    for (size_t i = v->size() - 1; i > 0; --i) {
      size_t j = static_cast<size_t>(UniformInt(i + 1));
      std::swap((*v)[i], (*v)[j]);
    }
  }

  /// \brief Samples `k` indices from [0, n) without replacement.
  std::vector<size_t> SampleWithoutReplacement(size_t n, size_t k);

  /// \brief Derives an independent child generator (for parallel arms).
  Rng Fork();

  /// \brief Full generator state, for checkpoint/restore of streaming
  /// sessions. Includes the Box–Muller carry so a restored stream continues
  /// bit-identically even mid normal-pair.
  struct Snapshot {
    std::array<uint64_t, 4> state = {0, 0, 0, 0};
    bool have_cached_normal = false;
    double cached_normal = 0.0;
  };

  /// \brief Captures the current state.
  Snapshot Save() const { return {s_, have_cached_normal_, cached_normal_}; }

  /// \brief Restores a previously captured state.
  void Restore(const Snapshot& snapshot) {
    s_ = snapshot.state;
    have_cached_normal_ = snapshot.have_cached_normal;
    cached_normal_ = snapshot.cached_normal;
  }

 private:
  static uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

  std::array<uint64_t, 4> s_;
  bool have_cached_normal_ = false;
  double cached_normal_ = 0.0;
};

}  // namespace itrim

#endif  // ITRIM_COMMON_RNG_H_
