// Fixed-width console table rendering for the benchmark harness.
//
// Every bench binary reproduces a table or figure from the paper by printing
// aligned rows; TablePrinter keeps that output uniform and greppable.
#ifndef ITRIM_COMMON_TABLE_PRINTER_H_
#define ITRIM_COMMON_TABLE_PRINTER_H_

#include <cstddef>
#include <ostream>
#include <string>
#include <vector>

namespace itrim {

/// \brief Collects rows of string/number cells and renders an aligned table.
class TablePrinter {
 public:
  /// Creates a table with the given column headers.
  explicit TablePrinter(std::vector<std::string> headers);

  /// \brief Starts a new row; subsequent Add* calls fill it left to right.
  void BeginRow();

  /// \brief Appends a string cell to the current row.
  void AddCell(const std::string& value);

  /// \brief Appends a numeric cell formatted with `precision` decimals.
  void AddNumber(double value, int precision = 4);

  /// \brief Appends an integer cell.
  void AddInt(long long value);

  /// \brief Convenience: adds a whole row of string cells.
  void AddRow(const std::vector<std::string>& cells);

  /// \brief Renders the table (header, separator, rows) to `os`.
  void Print(std::ostream& os) const;

  /// \brief Number of data rows so far.
  size_t num_rows() const { return rows_.size(); }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// \brief Prints a titled section banner (used to label figure panels).
void PrintBanner(std::ostream& os, const std::string& title);

}  // namespace itrim

#endif  // ITRIM_COMMON_TABLE_PRINTER_H_
