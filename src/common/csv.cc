#include "common/csv.h"

#include <cstdlib>
#include <fstream>
#include <sstream>

namespace itrim {

std::vector<std::string> SplitCsvLine(const std::string& line) {
  std::vector<std::string> fields;
  std::string field;
  std::stringstream ss(line);
  while (std::getline(ss, field, ',')) fields.push_back(field);
  if (!line.empty() && line.back() == ',') fields.emplace_back();
  return fields;
}

Result<std::vector<std::vector<double>>> ReadCsv(const std::string& path,
                                                 bool skip_header) {
  std::ifstream in(path);
  if (!in) return Status::IOError("cannot open " + path);
  std::vector<std::vector<double>> rows;
  std::string line;
  bool header_pending = skip_header;
  size_t expected_width = 0;
  size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty()) continue;
    if (header_pending) {
      header_pending = false;
      continue;
    }
    auto fields = SplitCsvLine(line);
    std::vector<double> row;
    row.reserve(fields.size());
    for (const auto& f : fields) {
      char* end = nullptr;
      double v = std::strtod(f.c_str(), &end);
      if (end == f.c_str()) {
        return Status::InvalidArgument("non-numeric field '" + f + "' at " +
                                       path + ":" + std::to_string(line_no));
      }
      row.push_back(v);
    }
    if (expected_width == 0) {
      expected_width = row.size();
    } else if (row.size() != expected_width) {
      return Status::InvalidArgument("ragged row at " + path + ":" +
                                     std::to_string(line_no));
    }
    rows.push_back(std::move(row));
  }
  return rows;
}

Status WriteCsv(const std::string& path,
                const std::vector<std::vector<double>>& rows,
                const std::vector<std::string>& header) {
  std::ofstream out(path);
  if (!out) return Status::IOError("cannot open " + path + " for writing");
  if (!header.empty()) {
    for (size_t i = 0; i < header.size(); ++i) {
      if (i) out << ",";
      out << header[i];
    }
    out << "\n";
  }
  for (const auto& row : rows) {
    for (size_t i = 0; i < row.size(); ++i) {
      if (i) out << ",";
      out << row[i];
    }
    out << "\n";
  }
  if (!out) return Status::IOError("write failure on " + path);
  return Status::OK();
}

}  // namespace itrim
