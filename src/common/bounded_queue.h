// Bounded multi-producer / single-consumer event queue.
//
// The ingest front-end (src/ingest/) shards arriving reports across worker
// threads; each shard owns one of these queues. The queue is the
// backpressure boundary of the service: Push() blocks the producer while
// the shard is `capacity` events behind (so a slow worker throttles its
// producers instead of growing memory without bound), TryPush() refuses
// instead of blocking (the load-shedding shape), and the single consumer
// drains events in arrival order with PopBatch() — batching is what lets
// the worker coalesce co-arriving events for the same tenant into full
// rounds.
//
// Storage is a fixed ring over a vector allocated once at construction, so
// a steady-state Push/PopBatch cycle performs zero heap allocations (for
// trivially copyable T). Close() wakes every blocked producer and the
// consumer; the consumer drains whatever is still queued before PopBatch
// reports exhaustion.
#ifndef ITRIM_COMMON_BOUNDED_QUEUE_H_
#define ITRIM_COMMON_BOUNDED_QUEUE_H_

#include <condition_variable>
#include <cstddef>
#include <mutex>
#include <vector>

namespace itrim {

/// \brief Fixed-capacity blocking FIFO: many producers, one consumer.
template <typename T>
class BoundedMpscQueue {
 public:
  /// Creates a queue holding at most `capacity` items (clamped to >= 1).
  explicit BoundedMpscQueue(size_t capacity)
      : capacity_(capacity == 0 ? 1 : capacity),
        ring_(capacity == 0 ? 1 : capacity) {}

  BoundedMpscQueue(const BoundedMpscQueue&) = delete;
  BoundedMpscQueue& operator=(const BoundedMpscQueue&) = delete;

  /// \brief Enqueues `item`, blocking while the queue is full. Returns
  /// false iff the queue was closed (the item is then dropped).
  bool Push(const T& item) {
    std::unique_lock<std::mutex> lock(mu_);
    not_full_.wait(lock, [this] { return closed_ || size_ < capacity_; });
    if (closed_) return false;
    ring_[(head_ + size_) % capacity_] = item;
    ++size_;
    lock.unlock();
    not_empty_.notify_one();
    return true;
  }

  /// \brief Enqueues `item` only if space is free right now. Returns false
  /// when the queue is full or closed.
  bool TryPush(const T& item) {
    std::unique_lock<std::mutex> lock(mu_);
    if (closed_ || size_ >= capacity_) return false;
    ring_[(head_ + size_) % capacity_] = item;
    ++size_;
    lock.unlock();
    not_empty_.notify_one();
    return true;
  }

  /// \brief Appends up to `max_items` queued items to `*out` in FIFO order,
  /// blocking while the queue is open and empty. Returns the number of
  /// items delivered; 0 means the queue is closed *and* fully drained (the
  /// consumer's termination signal).
  size_t PopBatch(std::vector<T>* out, size_t max_items) {
    if (max_items == 0) return 0;
    std::unique_lock<std::mutex> lock(mu_);
    not_empty_.wait(lock, [this] { return closed_ || size_ > 0; });
    size_t taken = size_ < max_items ? size_ : max_items;
    for (size_t i = 0; i < taken; ++i) {
      out->push_back(ring_[head_]);
      head_ = (head_ + 1) % capacity_;
    }
    size_ -= taken;
    lock.unlock();
    // Everything between empty and full may be waiting on the producer
    // side; a batched pop can free many slots at once.
    if (taken > 0) not_full_.notify_all();
    return taken;
  }

  /// \brief Closes the queue: producers are refused (and unblocked) from
  /// now on; the consumer still drains what is queued. Idempotent.
  void Close() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      closed_ = true;
    }
    not_full_.notify_all();
    not_empty_.notify_all();
  }

  size_t capacity() const { return capacity_; }

  size_t size() const {
    std::lock_guard<std::mutex> lock(mu_);
    return size_;
  }

  bool closed() const {
    std::lock_guard<std::mutex> lock(mu_);
    return closed_;
  }

 private:
  const size_t capacity_;
  mutable std::mutex mu_;
  std::condition_variable not_full_;
  std::condition_variable not_empty_;
  std::vector<T> ring_;
  size_t head_ = 0;  ///< index of the oldest queued item
  size_t size_ = 0;
  bool closed_ = false;
};

}  // namespace itrim

#endif  // ITRIM_COMMON_BOUNDED_QUEUE_H_
