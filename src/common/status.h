// Status / Result error-handling primitives in the RocksDB/Arrow idiom.
//
// Library code never throws across the public API. Fallible operations return
// `Status` (no payload) or `Result<T>` (payload or error). Both are cheap to
// move and carry a machine-readable code plus a human-readable message.
#ifndef ITRIM_COMMON_STATUS_H_
#define ITRIM_COMMON_STATUS_H_

#include <cassert>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <variant>

namespace itrim {

/// Machine-readable error category for `Status` and `Result<T>`.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument = 1,
  kOutOfRange = 2,
  kFailedPrecondition = 3,
  kNotFound = 4,
  kAlreadyExists = 5,
  kInternal = 6,
  kNotImplemented = 7,
  kIOError = 8,
  kUnavailable = 9,
};

/// \brief Human-readable name of a status code (e.g. "InvalidArgument").
std::string_view StatusCodeName(StatusCode code);

/// \brief Success-or-error outcome of a fallible operation.
///
/// `Status::OK()` is the success value; error factories carry a message.
/// Use `ITRIM_RETURN_NOT_OK(expr)` to propagate errors up the call stack.
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}

  /// \brief Returns the success status.
  static Status OK() { return Status(); }

  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status NotImplemented(std::string msg) {
    return Status(StatusCode::kNotImplemented, std::move(msg));
  }
  static Status IOError(std::string msg) {
    return Status(StatusCode::kIOError, std::move(msg));
  }
  /// Transient refusal: the operation may succeed if retried later (e.g. a
  /// bounded ingest queue is full right now).
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }

  /// \brief Builds a status of an existing code with a new message (e.g.
  /// re-wrapping a propagated error with caller context). `kOk` yields
  /// OK() and drops the message.
  static Status WithCode(StatusCode code, std::string msg) {
    if (code == StatusCode::kOk) return OK();
    return Status(code, std::move(msg));
  }

  /// \brief True iff this status represents success.
  bool ok() const { return code_ == StatusCode::kOk; }
  /// \brief The status code.
  StatusCode code() const { return code_; }
  /// \brief Error message; empty for OK.
  const std::string& message() const { return message_; }

  /// \brief "OK" or "<CodeName>: <message>".
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && message_ == other.message_;
  }

 private:
  Status(StatusCode code, std::string msg)
      : code_(code), message_(std::move(msg)) {}

  StatusCode code_;
  std::string message_;
};

/// \brief Value-or-error wrapper: holds a `T` on success, a `Status` on error.
///
/// Deliberately minimal (no monadic combinators): call sites test `ok()` then
/// take `ValueOrDie()` / `*result`, or propagate with ITRIM_ASSIGN_OR_RETURN.
template <typename T>
class Result {
 public:
  /// Constructs a successful result (implicit so `return value;` works).
  Result(T value) : payload_(std::move(value)) {}  // NOLINT(runtime/explicit)
  /// Constructs an error result from a non-OK status.
  Result(Status status) : payload_(std::move(status)) {  // NOLINT
    assert(!std::get<Status>(payload_).ok() &&
           "Result must not be built from an OK Status");
  }

  /// \brief True iff a value is present.
  bool ok() const { return std::holds_alternative<T>(payload_); }

  /// \brief The error status (OK if a value is present).
  Status status() const {
    if (ok()) return Status::OK();
    return std::get<Status>(payload_);
  }

  /// \brief Returns the value; dies if this holds an error.
  const T& ValueOrDie() const& {
    assert(ok() && "ValueOrDie on error Result");
    return std::get<T>(payload_);
  }
  T& ValueOrDie() & {
    assert(ok() && "ValueOrDie on error Result");
    return std::get<T>(payload_);
  }
  T&& ValueOrDie() && {
    assert(ok() && "ValueOrDie on error Result");
    return std::get<T>(std::move(payload_));
  }

  /// \brief Returns the value or `fallback` when this holds an error.
  T ValueOr(T fallback) const {
    if (ok()) return std::get<T>(payload_);
    return fallback;
  }

  const T& operator*() const& { return ValueOrDie(); }
  T& operator*() & { return ValueOrDie(); }
  const T* operator->() const { return &ValueOrDie(); }
  T* operator->() { return &ValueOrDie(); }

 private:
  std::variant<T, Status> payload_;
};

}  // namespace itrim

/// Propagates a non-OK `Status` to the caller.
#define ITRIM_RETURN_NOT_OK(expr)            \
  do {                                       \
    ::itrim::Status _st = (expr);            \
    if (!_st.ok()) return _st;               \
  } while (false)

/// Evaluates a `Result<T>` expression; on error returns its status, otherwise
/// assigns the value into `lhs`.
#define ITRIM_ASSIGN_OR_RETURN_IMPL(var, lhs, rexpr) \
  auto var = (rexpr);                                \
  if (!var.ok()) return var.status();                \
  lhs = std::move(var).ValueOrDie()

#define ITRIM_CONCAT_INNER(a, b) a##b
#define ITRIM_CONCAT(a, b) ITRIM_CONCAT_INNER(a, b)
#define ITRIM_ASSIGN_OR_RETURN(lhs, rexpr) \
  ITRIM_ASSIGN_OR_RETURN_IMPL(ITRIM_CONCAT(_itrim_res_, __LINE__), lhs, rexpr)

#endif  // ITRIM_COMMON_STATUS_H_
