#include "common/thread_pool.h"

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <exception>
#include <limits>
#include <utility>

#include "obs/metrics.h"

namespace itrim {

namespace {

thread_local bool t_in_pool_worker = false;

}  // namespace

ThreadPool::ThreadPool(int num_threads) {
  int n = std::max(1, num_threads);
  workers_.reserve(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() { Shutdown(); }

void ThreadPool::Shutdown() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  for (std::thread& w : workers_) {
    if (w.joinable()) w.join();
  }
}

std::future<void> ThreadPool::Submit(std::function<void()> fn) {
  std::packaged_task<void()> task(std::move(fn));
  std::future<void> future = task.get_future();
  {
    std::unique_lock<std::mutex> lock(mu_);
    if (!stop_) {
      queue_.push(std::move(task));
      lock.unlock();
      cv_.notify_one();
      return future;
    }
    // Stopped pool: the workers may already have seen an empty queue and
    // exited, so an enqueued task could sit unexecuted forever and this
    // future would never resolve. Run it inline instead — same completion
    // contract, no hang.
  }
  task();
  return future;
}

void ThreadPool::WorkerLoop() {
  t_in_pool_worker = true;
  for (;;) {
    obs::MetricSlot* metrics = metrics_.load(std::memory_order_acquire);
    std::packaged_task<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      const int64_t parked_ns =
          metrics != nullptr ? obs::MonotonicNowNs() : 0;
      cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (metrics != nullptr) {
        metrics->Inc(
            obs::Counter::kPoolIdleNanos,
            static_cast<uint64_t>(obs::MonotonicNowNs() - parked_ns));
      }
      if (queue_.empty()) return;  // stop_ && drained
      task = std::move(queue_.front());
      queue_.pop();
    }
    if (metrics == nullptr) {
      task();  // packaged_task routes exceptions into the future
    } else {
      const int64_t t0 = obs::MonotonicNowNs();
      task();
      metrics->Inc(obs::Counter::kPoolTasksExecuted);
      metrics->Observe(
          obs::Histogram::kPoolTaskUs,
          static_cast<double>(obs::MonotonicNowNs() - t0) / 1000.0);
    }
  }
}

ThreadPool* ThreadPool::Global() {
  static ThreadPool pool(DefaultNumThreads());
  return &pool;
}

bool ThreadPool::InWorker() { return t_in_pool_worker; }

int DefaultNumThreads() {
  const char* env = std::getenv("ITRIM_THREADS");
  if (env != nullptr && *env != '\0') {
    int n = std::atoi(env);
    if (n > 0) return n;
  }
  unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? static_cast<int>(hw) : 1;
}

void ParallelFor(size_t n, const std::function<void(size_t)>& body,
                 int num_jobs) {
  if (n == 0) return;
  int jobs = num_jobs > 0 ? num_jobs : DefaultNumThreads();
  jobs = static_cast<int>(
      std::min<size_t>(static_cast<size_t>(jobs), n));
  // Serial paths: explicit single job, a single index, or a nested call
  // from inside a pool worker (waiting on the pool from a pool thread
  // could deadlock once every worker does it).
  if (jobs <= 1 || ThreadPool::InWorker()) {
    for (size_t i = 0; i < n; ++i) body(i);
    return;
  }

  std::atomic<size_t> next{0};
  std::atomic<bool> failed{false};
  std::mutex err_mu;
  size_t err_index = std::numeric_limits<size_t>::max();
  std::exception_ptr err;

  auto drain = [&] {
    for (;;) {
      if (failed.load(std::memory_order_relaxed)) return;
      size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= n) return;
      try {
        body(i);
      } catch (...) {
        std::lock_guard<std::mutex> lock(err_mu);
        if (i < err_index) {
          err_index = i;
          err = std::current_exception();
        }
        failed.store(true, std::memory_order_relaxed);
        return;
      }
    }
  };

  // The caller is one of the `jobs` runners; the rest come from the shared
  // pool, topped up with dedicated threads when the request exceeds the
  // pool size (an explicit --jobs larger than the ITRIM_THREADS default
  // must not be silently capped). Each runner loops over the claim
  // counter, so progress is guaranteed even if the pool is saturated and
  // no extra worker ever picks a task up.
  ThreadPool* pool = ThreadPool::Global();
  const int helpers = jobs - 1;
  const int pooled = std::min(helpers, pool->num_threads());
  std::vector<std::future<void>> futures;
  futures.reserve(static_cast<size_t>(pooled));
  for (int j = 0; j < pooled; ++j) {
    futures.push_back(pool->Submit(drain));
  }
  std::vector<std::thread> extra;
  extra.reserve(static_cast<size_t>(helpers - pooled));
  for (int j = pooled; j < helpers; ++j) {
    extra.emplace_back([&drain] {
      t_in_pool_worker = true;  // nested ParallelFor stays serial here too
      drain();
    });
  }
  drain();
  for (std::future<void>& f : futures) f.wait();
  for (std::thread& t : extra) t.join();
  if (err) std::rethrow_exception(err);
}

void ParallelForShards(size_t n, size_t shard_size,
                       const std::function<void(size_t, size_t)>& body,
                       int num_jobs) {
  if (n == 0) return;
  int jobs = num_jobs > 0 ? num_jobs : DefaultNumThreads();
  if (shard_size == 0) {
    // ~4 shards per job balances uneven shard costs without reintroducing
    // per-item claim traffic.
    shard_size = std::max<size_t>(1, n / (4 * static_cast<size_t>(jobs)));
  }
  const size_t num_shards = (n + shard_size - 1) / shard_size;
  ParallelFor(
      num_shards,
      [&](size_t shard) {
        size_t begin = shard * shard_size;
        size_t end = std::min(n, begin + shard_size);
        body(begin, end);
      },
      num_jobs);
}

}  // namespace itrim
