// Local differential privacy mechanisms for mean estimation on [-1, 1].
//
// Substrate for the Section V case study and the Fig 9 experiment. Each
// mechanism perturbs a value x in [-1, 1] into an *unbiased* report (the
// sample mean of reports estimates the population mean), so trimming
// operates directly on the report distribution.
//
// Implemented mechanisms:
//  * Laplace   — x + Lap(2/ε) (sensitivity 2 on [-1, 1]).
//  * Duchi     — the 1-bit mechanism of Duchi, Jordan & Wainwright: reports
//                ±C with C = (e^ε + 1)/(e^ε - 1).
//  * Piecewise — the Piecewise Mechanism of Wang et al. (2019): continuous
//                reports in [-C, C], C = (e^{ε/2} + 1)/(e^{ε/2} - 1).
#ifndef ITRIM_LDP_MECHANISM_H_
#define ITRIM_LDP_MECHANISM_H_

#include <limits>
#include <memory>
#include <string>

#include "common/rng.h"
#include "common/status.h"

namespace itrim {

/// \brief An ε-LDP perturbation for scalar inputs in [-1, 1].
class LdpMechanism {
 public:
  virtual ~LdpMechanism() = default;

  /// \brief Mechanism name ("laplace", "duchi", "piecewise").
  virtual std::string name() const = 0;

  /// \brief Privacy budget ε.
  virtual double epsilon() const = 0;

  /// \brief Perturbs a true value (clamped into [-1, 1]) into an unbiased
  /// report.
  virtual double Perturb(double x, Rng* rng) const = 0;

  /// \brief Lower bound of the report domain (-inf if unbounded).
  virtual double report_lo() const = 0;

  /// \brief Upper bound of the report domain (+inf if unbounded).
  virtual double report_hi() const = 0;
};

/// \brief Laplace mechanism: report = x + Lap(2/ε); unbounded reports.
class LaplaceMechanism : public LdpMechanism {
 public:
  explicit LaplaceMechanism(double epsilon);
  std::string name() const override { return "laplace"; }
  double epsilon() const override { return epsilon_; }
  double Perturb(double x, Rng* rng) const override;
  double report_lo() const override {
    return -std::numeric_limits<double>::infinity();
  }
  double report_hi() const override {
    return std::numeric_limits<double>::infinity();
  }

 private:
  double epsilon_;
  double scale_;
};

/// \brief Duchi et al. 1-bit mechanism: reports ±(e^ε+1)/(e^ε-1).
class DuchiMechanism : public LdpMechanism {
 public:
  explicit DuchiMechanism(double epsilon);
  std::string name() const override { return "duchi"; }
  double epsilon() const override { return epsilon_; }
  double Perturb(double x, Rng* rng) const override;
  double report_lo() const override { return -c_; }
  double report_hi() const override { return c_; }
  double c() const { return c_; }

 private:
  double epsilon_;
  double c_;
};

/// \brief Piecewise Mechanism (Wang et al. 2019): continuous reports in
/// [-C, C] concentrated around the true value.
class PiecewiseMechanism : public LdpMechanism {
 public:
  explicit PiecewiseMechanism(double epsilon);
  std::string name() const override { return "piecewise"; }
  double epsilon() const override { return epsilon_; }
  double Perturb(double x, Rng* rng) const override;
  double report_lo() const override { return -c_; }
  double report_hi() const override { return c_; }
  double c() const { return c_; }

 private:
  double epsilon_;
  double c_;
  double p_center_;  ///< probability of landing in the high-density band
};

/// \brief Factory by name; returns an error for unknown mechanisms or ε <= 0.
Result<std::unique_ptr<LdpMechanism>> MakeMechanism(const std::string& name,
                                                    double epsilon);

}  // namespace itrim

#endif  // ITRIM_LDP_MECHANISM_H_
