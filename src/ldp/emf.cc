#include "ldp/emf.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/math_util.h"
#include "common/rng.h"

namespace itrim {

double ReportModel::InputBinCenter(size_t x) const {
  double width = 2.0 / static_cast<double>(input_bins);
  return -1.0 + (static_cast<double>(x) + 0.5) * width;
}

size_t ReportModel::ReportBinOf(double report) const {
  if (report <= report_lo) return 0;
  if (report >= report_hi) return report_bins - 1;
  double width = (report_hi - report_lo) / static_cast<double>(report_bins);
  size_t idx = static_cast<size_t>((report - report_lo) / width);
  return std::min(idx, report_bins - 1);
}

Result<ReportModel> ReportModel::Build(const LdpMechanism& mechanism,
                                       double report_lo, double report_hi,
                                       size_t input_bins, size_t report_bins,
                                       size_t samples_per_bin,
                                       uint64_t seed) {
  if (!(report_lo < report_hi)) {
    return Status::InvalidArgument("require report_lo < report_hi");
  }
  if (!std::isfinite(report_lo) || !std::isfinite(report_hi)) {
    return Status::InvalidArgument("report bounds must be finite");
  }
  if (input_bins < 2 || report_bins < 2) {
    return Status::InvalidArgument("need >= 2 bins on both axes");
  }
  if (samples_per_bin == 0) {
    return Status::InvalidArgument("samples_per_bin must be > 0");
  }
  ReportModel model;
  model.report_lo = report_lo;
  model.report_hi = report_hi;
  model.report_bins = report_bins;
  model.input_bins = input_bins;
  model.conditional.assign(report_bins * input_bins, 0.0);
  Rng rng(seed);
  for (size_t x = 0; x < input_bins; ++x) {
    double center = model.InputBinCenter(x);
    for (size_t s = 0; s < samples_per_bin; ++s) {
      double report = mechanism.Perturb(center, &rng);
      model.conditional[model.ReportBinOf(report) * input_bins + x] += 1.0;
    }
    // Normalize the column with light smoothing so no report bin has
    // exactly zero honest density (a single stray honest report must not
    // get posterior honesty zero).
    double smooth = 0.5;
    double total = static_cast<double>(samples_per_bin) +
                   smooth * static_cast<double>(report_bins);
    for (size_t r = 0; r < report_bins; ++r) {
      auto& cell = model.conditional[r * input_bins + x];
      cell = (cell + smooth) / total;
    }
  }
  return model;
}

double EmfResult::WeightedMean(const std::vector<double>& values) const {
  if (values.size() != weights.size() || values.empty()) return 0.0;
  double num = 0.0, den = 0.0;
  for (size_t i = 0; i < values.size(); ++i) {
    num += weights[i] * values[i];
    den += weights[i];
  }
  return den > 0.0 ? num / den : 0.0;
}

double EmfResult::InputMean(const ReportModel& model) const {
  double mean = 0.0;
  for (size_t x = 0; x < input_frequencies.size(); ++x) {
    mean += input_frequencies[x] * model.InputBinCenter(x);
  }
  return mean;
}

Result<EmfResult> FitEmFilter(const ReportModel& model,
                              const std::vector<double>& reports,
                              const EmfConfig& config) {
  if (reports.empty()) {
    return Status::InvalidArgument("no reports to filter");
  }
  if (model.conditional.size() != model.report_bins * model.input_bins) {
    return Status::InvalidArgument("malformed report model");
  }
  const size_t rb = model.report_bins;
  const size_t ib = model.input_bins;
  const double n = static_cast<double>(reports.size());

  // Report histogram.
  std::vector<double> counts(rb, 0.0);
  std::vector<size_t> report_bin(reports.size());
  for (size_t i = 0; i < reports.size(); ++i) {
    report_bin[i] = model.ReportBinOf(reports[i]);
    counts[report_bin[i]] += 1.0;
  }

  EmfResult result;
  result.attack_frequencies.assign(rb, 0.0);
  result.input_frequencies.assign(ib, 1.0 / static_cast<double>(ib));

  // Phase 1 — maximum-likelihood deconvolution of the input histogram from
  // ALL reports (Richardson-Lucy multiplicative EM). The fit is restricted
  // to the honest manifold {M theta}, so it can only explain report mass
  // that *some* input distribution could have produced. A joint fit with a
  // free attack component is not identifiable (the attack can mimic
  // M theta exactly), hence the two-phase structure.
  std::vector<double> honest(rb, 0.0);  // h = M theta
  std::vector<double> theta_next(ib, 0.0);
  std::vector<double> freqs(rb, 0.0);
  for (size_t r = 0; r < rb; ++r) freqs[r] = counts[r] / n;
  double prev_ll = -std::numeric_limits<double>::infinity();
  for (int iter = 0; iter < config.max_iterations; ++iter) {
    ++result.iterations;
    double ll = 0.0;
    for (size_t r = 0; r < rb; ++r) {
      double acc = 0.0;
      for (size_t x = 0; x < ib; ++x) {
        acc += model.conditional[r * ib + x] * result.input_frequencies[x];
      }
      honest[r] = acc;
      if (counts[r] > 0.0 && acc > 0.0) ll += counts[r] * std::log(acc);
    }
    double theta_total = 0.0;
    for (size_t x = 0; x < ib; ++x) {
      double acc = 0.0;
      for (size_t r = 0; r < rb; ++r) {
        if (honest[r] <= 0.0) continue;
        acc += freqs[r] * model.conditional[r * ib + x] / honest[r];
      }
      theta_next[x] = result.input_frequencies[x] * acc;
      theta_total += theta_next[x];
    }
    if (theta_total > 0.0) {
      for (size_t x = 0; x < ib; ++x) {
        result.input_frequencies[x] = theta_next[x] / theta_total;
      }
    }
    if (iter > 0 && ll - prev_ll < config.tolerance) break;
    prev_ll = ll;
  }
  // Refresh h with the converged theta.
  for (size_t r = 0; r < rb; ++r) {
    double acc = 0.0;
    for (size_t x = 0; x < ib; ++x) {
      acc += model.conditional[r * ib + x] * result.input_frequencies[x];
    }
    honest[r] = acc;
  }

  // Phase 2 — off-manifold residual attribution: report mass the best
  // honest explanation cannot account for is attack mass.
  double residual_total = 0.0;
  for (size_t r = 0; r < rb; ++r) {
    double residual = std::max(0.0, freqs[r] - honest[r]);
    result.attack_frequencies[r] = residual;
    residual_total += residual;
  }
  result.beta = Clamp(residual_total, config.beta_floor, config.beta_ceil);
  if (residual_total > 0.0) {
    for (double& a : result.attack_frequencies) a /= residual_total;
  } else {
    result.attack_frequencies.assign(rb, 1.0 / static_cast<double>(rb));
  }

  // Posterior honesty per report bin under the fitted mixture.
  result.weights.resize(reports.size());
  std::vector<double> gamma(rb, 0.0);
  for (size_t r = 0; r < rb; ++r) {
    double attack = result.beta * result.attack_frequencies[r];
    double mix = attack + (1.0 - result.beta) * honest[r];
    gamma[r] = mix > 0.0 ? attack / mix : 0.0;
  }
  for (size_t i = 0; i < reports.size(); ++i) {
    result.weights[i] = 1.0 - gamma[report_bin[i]];
  }
  return result;
}

}  // namespace itrim
