#include "ldp/ldp_game.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>

#include "common/math_util.h"
#include "game/public_board.h"
#include "game/score_model.h"
#include "game/session.h"
#include "game/trimmer.h"
#include "ldp/report_score_model.h"

namespace itrim {

Status LdpGameConfig::Validate() const {
  if (rounds < 1) return Status::InvalidArgument("rounds must be >= 1");
  if (users_per_round == 0) {
    return Status::InvalidArgument("users_per_round must be > 0");
  }
  if (attack_ratio < 0.0) {
    return Status::InvalidArgument("attack_ratio must be >= 0");
  }
  if (!(tth > 0.0 && tth < 1.0)) {
    return Status::InvalidArgument("tth must be in (0,1)");
  }
  if (bootstrap_size == 0) {
    return Status::InvalidArgument("bootstrap_size must be > 0");
  }
  return Status::OK();
}

namespace {

// The LDP ScoreModel lives in ldp/report_score_model.h so fleet tenants
// can instantiate it too; this file only maps configs and estimators.

// Maps the LDP configuration onto the shared engine configuration.
GameConfig SessionConfig(const LdpGameConfig& config) {
  GameConfig g;
  g.rounds = config.rounds;
  g.round_size = config.users_per_round;
  g.attack_ratio = config.attack_ratio;
  g.tth = config.tth;
  g.bootstrap_size = config.bootstrap_size;
  g.board_capacity = config.board_capacity;
  g.round_mass_trimming = false;
  g.seed = config.seed;
  return g;
}

}  // namespace

LdpCollectionGame::LdpCollectionGame(LdpGameConfig config,
                                     const std::vector<double>* population,
                                     const LdpMechanism* mechanism,
                                     LdpAttack* attack)
    : config_(config), config_status_(config.Validate()),
      population_(population), mechanism_(mechanism), attack_(attack) {
  assert(population != nullptr && mechanism != nullptr && attack != nullptr);
}

double LdpCollectionGame::TrueMean() const { return Mean(*population_); }

void LdpCollectionGame::ReportBounds(double* lo, double* hi) const {
  *lo = mechanism_->report_lo();
  *hi = mechanism_->report_hi();
  if (!std::isfinite(*lo) || !std::isfinite(*hi)) {
    // Laplace reports are unbounded; cover all but a negligible tail.
    double spread = 1.0 + 2.0 / mechanism_->epsilon() * 8.0;
    *lo = -spread;
    *hi = spread;
  }
}

void LdpCollectionGame::GenerateRound(Rng* rng, std::vector<double>* reports,
                                      std::vector<char>* is_poison) const {
  const size_t attackers = static_cast<size_t>(std::llround(
      config_.attack_ratio * static_cast<double>(config_.users_per_round)));
  reports->clear();
  is_poison->clear();
  reports->reserve(config_.users_per_round + attackers);
  is_poison->reserve(config_.users_per_round + attackers);
  for (size_t i = 0; i < config_.users_per_round; ++i) {
    double x = (*population_)[rng->UniformInt(population_->size())];
    reports->push_back(mechanism_->Perturb(x, rng));
    is_poison->push_back(0);
  }
  for (size_t i = 0; i < attackers; ++i) {
    reports->push_back(attack_->PoisonReport(*mechanism_, rng));
    is_poison->push_back(1);
  }
}

Result<LdpRunResult> LdpCollectionGame::RunTrimming(
    CollectorStrategy* collector, QualityEvaluation* quality) {
  ITRIM_RETURN_NOT_OK(config_status_);
  LdpReportScoreModel model(population_, mechanism_, attack_, config_.tth);
  TrimmingSession session(SessionConfig(config_), &model, collector,
                          /*adversary=*/nullptr, quality);
  LdpRunResult result;
  ITRIM_ASSIGN_OR_RETURN(result.game, session.RunToCompletion());
  result.true_mean = TrueMean();

  double kept_sum = 0.0;
  for (double v : model.retained()) kept_sum += v;
  const size_t kept_count = model.retained().size();
  result.estimated_mean =
      kept_count > 0 ? kept_sum / static_cast<double>(kept_count) : 0.0;
  double err = result.estimated_mean - result.true_mean;
  result.squared_error = err * err;
  return result;
}

Result<LdpRunResult> LdpCollectionGame::RunEmf(const EmfConfig& emf_config) {
  ITRIM_RETURN_NOT_OK(config_status_);
  if (population_->empty()) {
    return Status::FailedPrecondition("empty population");
  }
  Rng rng(config_.seed);
  std::vector<double> all_reports;
  std::vector<double> reports;
  std::vector<char> is_poison;
  for (int round = 1; round <= config_.rounds; ++round) {
    GenerateRound(&rng, &reports, &is_poison);
    all_reports.insert(all_reports.end(), reports.begin(), reports.end());
  }

  // The collector knows the protocol, so the conditional report model is
  // public knowledge; EMF needs no clean calibration sample.
  double lo, hi;
  ReportBounds(&lo, &hi);
  ReportModel model;
  ITRIM_ASSIGN_OR_RETURN(
      model, ReportModel::Build(*mechanism_, lo, hi, /*input_bins=*/20,
                                /*report_bins=*/40, /*samples_per_bin=*/4000,
                                config_.seed ^ 0xE3F1ULL));
  EmfResult fit;
  ITRIM_ASSIGN_OR_RETURN(fit, FitEmFilter(model, all_reports, emf_config));

  LdpRunResult result;
  result.true_mean = TrueMean();
  result.estimated_mean = fit.WeightedMean(all_reports);
  result.emf_beta = fit.beta;
  double err = result.estimated_mean - result.true_mean;
  result.squared_error = err * err;
  return result;
}

Result<LdpRunResult> LdpCollectionGame::RunUndefended() {
  ITRIM_RETURN_NOT_OK(config_status_);
  if (population_->empty()) {
    return Status::FailedPrecondition("empty population");
  }
  Rng rng(config_.seed);
  double sum = 0.0;
  size_t count = 0;
  std::vector<double> reports;
  std::vector<char> is_poison;
  for (int round = 1; round <= config_.rounds; ++round) {
    GenerateRound(&rng, &reports, &is_poison);
    for (double v : reports) {
      sum += v;
      ++count;
    }
  }
  LdpRunResult result;
  result.true_mean = TrueMean();
  result.estimated_mean = count > 0 ? sum / static_cast<double>(count) : 0.0;
  double err = result.estimated_mean - result.true_mean;
  result.squared_error = err * err;
  return result;
}

}  // namespace itrim
