#include "ldp/ldp_game.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>

#include "common/math_util.h"
#include "game/public_board.h"
#include "game/trimmer.h"

namespace itrim {

Status LdpGameConfig::Validate() const {
  if (rounds < 1) return Status::InvalidArgument("rounds must be >= 1");
  if (users_per_round == 0) {
    return Status::InvalidArgument("users_per_round must be > 0");
  }
  if (attack_ratio < 0.0) {
    return Status::InvalidArgument("attack_ratio must be >= 0");
  }
  if (!(tth > 0.0 && tth < 1.0)) {
    return Status::InvalidArgument("tth must be in (0,1)");
  }
  if (bootstrap_size == 0) {
    return Status::InvalidArgument("bootstrap_size must be > 0");
  }
  return Status::OK();
}

LdpCollectionGame::LdpCollectionGame(LdpGameConfig config,
                                     const std::vector<double>* population,
                                     const LdpMechanism* mechanism,
                                     LdpAttack* attack)
    : config_(config), population_(population), mechanism_(mechanism),
      attack_(attack) {
  assert(population != nullptr && mechanism != nullptr && attack != nullptr);
}

double LdpCollectionGame::TrueMean() const { return Mean(*population_); }

void LdpCollectionGame::ReportBounds(double* lo, double* hi) const {
  *lo = mechanism_->report_lo();
  *hi = mechanism_->report_hi();
  if (!std::isfinite(*lo) || !std::isfinite(*hi)) {
    // Laplace reports are unbounded; cover all but a negligible tail.
    double spread = 1.0 + 2.0 / mechanism_->epsilon() * 8.0;
    *lo = -spread;
    *hi = spread;
  }
}

void LdpCollectionGame::GenerateRound(Rng* rng, std::vector<double>* reports,
                                      std::vector<char>* is_poison) const {
  const size_t attackers = static_cast<size_t>(std::llround(
      config_.attack_ratio * static_cast<double>(config_.users_per_round)));
  reports->clear();
  is_poison->clear();
  reports->reserve(config_.users_per_round + attackers);
  is_poison->reserve(config_.users_per_round + attackers);
  for (size_t i = 0; i < config_.users_per_round; ++i) {
    double x = (*population_)[rng->UniformInt(population_->size())];
    reports->push_back(mechanism_->Perturb(x, rng));
    is_poison->push_back(0);
  }
  for (size_t i = 0; i < attackers; ++i) {
    reports->push_back(attack_->PoisonReport(*mechanism_, rng));
    is_poison->push_back(1);
  }
}

Result<LdpRunResult> LdpCollectionGame::RunTrimming(
    CollectorStrategy* collector, QualityEvaluation* quality) {
  ITRIM_RETURN_NOT_OK(config_.Validate());
  if (population_->empty()) {
    return Status::FailedPrecondition("empty population");
  }
  Rng rng(config_.seed);
  collector->Reset();
  PublicBoard board(config_.board_capacity, config_.seed ^ 0x1234567ULL);

  // Round 0: clean bootstrap of honest reports fixes the percentile
  // reference (the calibration sample behind Algorithm 1's QE(X0)).
  for (size_t i = 0; i < config_.bootstrap_size; ++i) {
    double x = (*population_)[rng.UniformInt(population_->size())];
    board.RecordOne(mechanism_->Perturb(x, &rng));
  }

  LdpRunResult result;
  result.true_mean = TrueMean();
  double kept_sum = 0.0;
  size_t kept_count = 0;
  RoundObservation prev;
  bool have_prev = false;
  std::vector<double> reports;
  std::vector<char> is_poison;

  for (int round = 1; round <= config_.rounds; ++round) {
    RoundContext ctx;
    ctx.round = round;
    ctx.tth = config_.tth;
    ctx.board = &board;
    if (have_prev) {
      ctx.prev_collector_percentile = prev.collector_percentile;
      ctx.prev_injection_percentile = prev.injection_percentile;
      ctx.prev_quality = prev.quality;
    }
    double trim_percentile = collector->TrimPercentile(ctx);

    GenerateRound(&rng, &reports, &is_poison);

    // Collector-side estimate of the attack position: the board rank of the
    // centroid of this round's upper-tail excess (what an Elastic defender
    // can actually observe).
    double injection_estimate = std::nan("");
    {
      auto tail_cut = board.Quantile(config_.tth);
      if (tail_cut.ok()) {
        double sum = 0.0;
        size_t count = 0;
        for (double v : reports) {
          if (v > *tail_cut) {
            sum += v;
            ++count;
          }
        }
        if (count > 0) {
          injection_estimate = board.PercentileRank(
              sum / static_cast<double>(count));
        }
      }
    }

    double quality_score =
        quality != nullptr ? quality->Evaluate(reports, board) : 1.0;

    // Trimming is symmetric: keep reports within the [1 - q, q] percentile
    // band of the clean report reference. Symmetric truncation keeps the
    // mean estimator unbiased under the mechanisms' symmetric noise while
    // the upper cut removes the attack's high-side mass; the lower cut's
    // false positives are what inflate MSE at small epsilon (the Fig 9
    // inflection).
    TrimOutcome outcome;
    if (trim_percentile >= 1.0) {
      outcome.keep.assign(reports.size(), 1);
      outcome.kept_count = reports.size();
      outcome.cutoff = std::numeric_limits<double>::infinity();
    } else {
      ITRIM_ASSIGN_OR_RETURN(double upper_cut,
                             board.Quantile(trim_percentile));
      ITRIM_ASSIGN_OR_RETURN(double lower_cut,
                             board.Quantile(1.0 - trim_percentile));
      outcome.cutoff = upper_cut;
      outcome.keep.assign(reports.size(), 1);
      for (size_t i = 0; i < reports.size(); ++i) {
        if (reports[i] > upper_cut || reports[i] < lower_cut) {
          outcome.keep[i] = 0;
          ++outcome.removed_count;
        } else {
          ++outcome.kept_count;
        }
      }
    }

    RoundRecord record;
    record.round = round;
    record.collector_percentile = trim_percentile;
    record.injection_percentile = injection_estimate;
    record.cutoff = outcome.cutoff;
    record.quality = quality_score;
    for (size_t i = 0; i < reports.size(); ++i) {
      bool poison = is_poison[i] != 0;
      if (poison) {
        ++record.poison_received;
      } else {
        ++record.benign_received;
      }
      if (outcome.keep[i]) {
        if (poison) {
          ++record.poison_kept;
        } else {
          ++record.benign_kept;
        }
        kept_sum += reports[i];
        ++kept_count;
      }
    }
    result.game.rounds.push_back(record);

    prev = RoundObservation{round,
                            trim_percentile,
                            injection_estimate,
                            quality_score,
                            reports.size(),
                            record.benign_kept + record.poison_kept,
                            record.poison_received,
                            record.poison_kept};
    have_prev = true;
    collector->Observe(prev);
  }
  result.game.termination_round = collector->termination_round();
  result.estimated_mean =
      kept_count > 0 ? kept_sum / static_cast<double>(kept_count) : 0.0;
  double err = result.estimated_mean - result.true_mean;
  result.squared_error = err * err;
  return result;
}

Result<LdpRunResult> LdpCollectionGame::RunEmf(const EmfConfig& emf_config) {
  ITRIM_RETURN_NOT_OK(config_.Validate());
  if (population_->empty()) {
    return Status::FailedPrecondition("empty population");
  }
  Rng rng(config_.seed);
  std::vector<double> all_reports;
  std::vector<double> reports;
  std::vector<char> is_poison;
  for (int round = 1; round <= config_.rounds; ++round) {
    GenerateRound(&rng, &reports, &is_poison);
    all_reports.insert(all_reports.end(), reports.begin(), reports.end());
  }

  // The collector knows the protocol, so the conditional report model is
  // public knowledge; EMF needs no clean calibration sample.
  double lo, hi;
  ReportBounds(&lo, &hi);
  ReportModel model;
  ITRIM_ASSIGN_OR_RETURN(
      model, ReportModel::Build(*mechanism_, lo, hi, /*input_bins=*/20,
                                /*report_bins=*/40, /*samples_per_bin=*/4000,
                                config_.seed ^ 0xE3F1ULL));
  EmfResult fit;
  ITRIM_ASSIGN_OR_RETURN(fit, FitEmFilter(model, all_reports, emf_config));

  LdpRunResult result;
  result.true_mean = TrueMean();
  result.estimated_mean = fit.WeightedMean(all_reports);
  result.emf_beta = fit.beta;
  double err = result.estimated_mean - result.true_mean;
  result.squared_error = err * err;
  return result;
}

Result<LdpRunResult> LdpCollectionGame::RunUndefended() {
  ITRIM_RETURN_NOT_OK(config_.Validate());
  if (population_->empty()) {
    return Status::FailedPrecondition("empty population");
  }
  Rng rng(config_.seed);
  double sum = 0.0;
  size_t count = 0;
  std::vector<double> reports;
  std::vector<char> is_poison;
  for (int round = 1; round <= config_.rounds; ++round) {
    GenerateRound(&rng, &reports, &is_poison);
    for (double v : reports) {
      sum += v;
      ++count;
    }
  }
  LdpRunResult result;
  result.true_mean = TrueMean();
  result.estimated_mean = count > 0 ? sum / static_cast<double>(count) : 0.0;
  double err = result.estimated_mean - result.true_mean;
  result.squared_error = err * err;
  return result;
}

}  // namespace itrim
