#include "ldp/frequency.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace itrim {

GrrOracle::GrrOracle(size_t domain, double epsilon)
    : domain_(domain), epsilon_(epsilon) {
  double e = std::exp(epsilon);
  p_ = e / (e + static_cast<double>(domain) - 1.0);
  q_ = 1.0 / (e + static_cast<double>(domain) - 1.0);
}

Result<GrrOracle> GrrOracle::Make(size_t domain, double epsilon) {
  if (domain < 2) return Status::InvalidArgument("domain must be >= 2");
  if (!(epsilon > 0.0)) {
    return Status::InvalidArgument("epsilon must be positive");
  }
  return GrrOracle(domain, epsilon);
}

std::vector<uint8_t> GrrOracle::Perturb(size_t item, Rng* rng) const {
  assert(item < domain_);
  size_t reported = item;
  if (!rng->Bernoulli(p_)) {
    // Uniform over the other domain-1 items.
    size_t offset = 1 + static_cast<size_t>(rng->UniformInt(domain_ - 1));
    reported = (item + offset) % domain_;
  }
  std::vector<uint8_t> report(domain_, 0);
  report[reported] = 1;
  return report;
}

std::vector<double> GrrOracle::Estimate(const std::vector<size_t>& bit_counts,
                                        size_t n) const {
  assert(bit_counts.size() == domain_);
  std::vector<double> out(domain_, 0.0);
  if (n == 0) return out;
  double dn = static_cast<double>(n);
  for (size_t v = 0; v < domain_; ++v) {
    double observed = static_cast<double>(bit_counts[v]) / dn;
    out[v] = (observed - q_) / (p_ - q_);
  }
  return out;
}

OueOracle::OueOracle(size_t domain, double epsilon)
    : domain_(domain), epsilon_(epsilon),
      q_(1.0 / (std::exp(epsilon) + 1.0)) {}

Result<OueOracle> OueOracle::Make(size_t domain, double epsilon) {
  if (domain < 2) return Status::InvalidArgument("domain must be >= 2");
  if (!(epsilon > 0.0)) {
    return Status::InvalidArgument("epsilon must be positive");
  }
  return OueOracle(domain, epsilon);
}

std::vector<uint8_t> OueOracle::Perturb(size_t item, Rng* rng) const {
  assert(item < domain_);
  std::vector<uint8_t> report(domain_, 0);
  for (size_t j = 0; j < domain_; ++j) {
    double keep = j == item ? 0.5 : q_;
    report[j] = rng->Bernoulli(keep) ? 1 : 0;
  }
  return report;
}

std::vector<double> OueOracle::Estimate(const std::vector<size_t>& bit_counts,
                                        size_t n) const {
  assert(bit_counts.size() == domain_);
  std::vector<double> out(domain_, 0.0);
  if (n == 0) return out;
  double dn = static_cast<double>(n);
  for (size_t v = 0; v < domain_; ++v) {
    double observed = static_cast<double>(bit_counts[v]) / dn;
    out[v] = (observed - q_) / (0.5 - q_);
  }
  return out;
}

void ReportAggregator::Add(const std::vector<uint8_t>& report) {
  assert(report.size() == bit_counts_.size());
  for (size_t j = 0; j < report.size(); ++j) {
    if (report[j]) ++bit_counts_[j];
  }
  ++count_;
}

std::vector<uint8_t> MaximalGainAttack::PoisonReport(
    const FrequencyOracle& oracle, Rng* rng) {
  std::vector<uint8_t> report(oracle.report_width(), 0);
  if (targets_.empty()) return report;
  if (oracle.name() == "grr") {
    // GRR reports are one-hot: pick one target (round-robin via rng).
    size_t pick = targets_[rng->UniformInt(targets_.size())];
    if (pick < report.size()) report[pick] = 1;
    return report;
  }
  // Unary encodings: claim every target at once.
  for (size_t t : targets_) {
    if (t < report.size()) report[t] = 1;
  }
  return report;
}

std::vector<uint8_t> FrequencyInputManipulation::PoisonReport(
    const FrequencyOracle& oracle, Rng* rng) {
  if (targets_.empty()) {
    return std::vector<uint8_t>(oracle.report_width(), 0);
  }
  size_t fake = targets_[rng->UniformInt(targets_.size())];
  return oracle.Perturb(std::min(fake, oracle.domain() - 1), rng);
}

double FrequencyGain(const std::vector<double>& estimated,
                     const std::vector<double>& truth,
                     const std::vector<size_t>& targets) {
  double gain = 0.0;
  for (size_t t : targets) {
    if (t < estimated.size() && t < truth.size()) {
      gain += estimated[t] - truth[t];
    }
  }
  return gain;
}

std::vector<char> TrimOueReports(
    const std::vector<std::vector<uint8_t>>& reports, const OueOracle& oracle,
    double sigma_bound) {
  const double d = static_cast<double>(oracle.domain());
  // Honest set-bit count: 1 hot bit kept w.p. 1/2 plus (d-1) cold bits on
  // w.p. q each.
  double mean = 0.5 + (d - 1.0) * oracle.q();
  double var = 0.25 + (d - 1.0) * oracle.q() * (1.0 - oracle.q());
  double cutoff = mean + sigma_bound * std::sqrt(var);
  std::vector<char> keep(reports.size(), 1);
  for (size_t i = 0; i < reports.size(); ++i) {
    size_t bits = 0;
    for (uint8_t b : reports[i]) bits += b;
    if (static_cast<double>(bits) > cutoff) keep[i] = 0;
  }
  return keep;
}

}  // namespace itrim
