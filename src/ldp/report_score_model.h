// ScoreModel of the LDP setting (Section V case study), shared by the
// LdpCollectionGame trimming path and fleet tenants of kind kLdp.
//
// Honest perturbed reports are the scores, poison reports come from the
// manipulation attack (which ignores the engine's percentile guidance — the
// session runs without an AdversaryStrategy), and reference trimming keeps
// the symmetric [1 - q, q] percentile band of the clean report reference.
// Symmetric truncation keeps the mean estimator unbiased under the
// mechanisms' symmetric noise while the upper cut removes the attack's
// high-side mass; the lower cut's false positives are what inflate MSE at
// small epsilon (the Fig 9 inflection).
#ifndef ITRIM_LDP_REPORT_SCORE_MODEL_H_
#define ITRIM_LDP_REPORT_SCORE_MODEL_H_

#include <span>
#include <string>
#include <vector>

#include "common/rng.h"
#include "common/status.h"
#include "game/public_board.h"
#include "game/score_model.h"
#include "game/trimmer.h"
#include "ldp/attacks.h"
#include "ldp/mechanism.h"

namespace itrim {

/// \brief LDP-report data setting of the TrimmingSession engine.
///
/// All pointers are borrowed. The mechanism is const and safely shared
/// across concurrent sessions; the attack's PoisonReport is non-const, so
/// give each concurrently stepped session its own attack instance (the
/// stock attacks in ldp/attacks.h hold no mutable state, but the interface
/// does not promise that).
class LdpReportScoreModel : public ScoreModel {
 public:
  LdpReportScoreModel(const std::vector<double>* population,
                      const LdpMechanism* mechanism, LdpAttack* attack,
                      double tth)
      : population_(population), mechanism_(mechanism), attack_(attack),
        tth_(tth) {}

  std::string name() const override { return "ldp_report"; }
  uint64_t BoardSeedSalt() const override { return 0x1234567ULL; }
  // Poison reports come from the LdpAttack, not from percentile guidance.
  bool RequiresAdversaryPositions() const override { return false; }

  Status BeginRun() override;
  Status Bootstrap(size_t bootstrap_size, Rng* rng,
                   PublicBoard* board) override;
  size_t PoisonCount(const GameConfig& config, double* quota) const override;
  void BeginRound(size_t expected) override;
  void AppendBenignBatch(size_t count, Rng* rng) override;
  Status AppendBenignBatch(std::span<const double> obs) override;
  Status AppendPoison(double position, Rng* rng,
                      const PublicBoard& board) override;
  /// One virtual call for the whole poison head: the attack needs no
  /// percentile guidance, so the engine hands the batch over wholesale
  /// (identical RNG order to the per-report hook).
  Status AppendPoisonBatch(std::span<const double> positions, Rng* rng,
                           const PublicBoard& board) override;
  std::span<const double> scores() const override { return reports_; }
  std::span<const char> is_poison() const override { return is_poison_; }
  Status ScoreInto(std::span<const double> obs,
                   std::span<double> out) const override;
  double InjectionSignal(const PublicBoard& board,
                         double adversary_mean) const override;
  Status TrimAtReference(double percentile, const PublicBoard& board,
                         TrimOutcome* out) override;
  void Commit(std::span<const char> keep) override;

  /// \brief Surviving reports accumulated since BeginRun().
  const std::vector<double>& retained() const { return retained_; }

 protected:
  double ScoreObservation(std::span<const double> obs) const override;

 private:
  const std::vector<double>* population_;
  const LdpMechanism* mechanism_;
  LdpAttack* attack_;
  double tth_;
  std::vector<double> reports_;
  std::vector<char> is_poison_;
  std::vector<double> retained_;
};

}  // namespace itrim

#endif  // ITRIM_LDP_REPORT_SCORE_MODEL_H_
