#include "ldp/report_score_model.h"

#include <cmath>

namespace itrim {

Status LdpReportScoreModel::BeginRun() {
  if (population_ == nullptr || population_->empty()) {
    return Status::FailedPrecondition("empty population");
  }
  retained_.clear();
  return Status::OK();
}

Status LdpReportScoreModel::Bootstrap(size_t bootstrap_size, Rng* rng,
                                      PublicBoard* board) {
  // Clean bootstrap of honest reports fixes the percentile reference
  // (the calibration sample behind Algorithm 1's QE(X0)).
  for (size_t i = 0; i < bootstrap_size; ++i) {
    double x = (*population_)[rng->UniformInt(population_->size())];
    board->RecordOne(mechanism_->Perturb(x, rng));
  }
  return Status::OK();
}

// The attack fields a fixed head count per round, not an accrued quota.
size_t LdpReportScoreModel::PoisonCount(const GameConfig& config,
                                        double* /*quota*/) const {
  return static_cast<size_t>(std::llround(
      config.attack_ratio * static_cast<double>(config.round_size)));
}

void LdpReportScoreModel::BeginRound(size_t expected) {
  reports_.clear();
  is_poison_.clear();
  reports_.reserve(expected);
  is_poison_.reserve(expected);
}

void LdpReportScoreModel::AppendBenign(size_t count, Rng* rng) {
  for (size_t i = 0; i < count; ++i) {
    double x = (*population_)[rng->UniformInt(population_->size())];
    reports_.push_back(mechanism_->Perturb(x, rng));
    is_poison_.push_back(0);
  }
}

Status LdpReportScoreModel::AppendPoison(double /*position*/, Rng* rng,
                                         const PublicBoard& /*board*/) {
  reports_.push_back(attack_->PoisonReport(*mechanism_, rng));
  is_poison_.push_back(1);
  return Status::OK();
}

// Collector-side estimate of the attack position: the board rank of the
// centroid of this round's upper-tail excess (what an Elastic defender
// can actually observe).
double LdpReportScoreModel::InjectionSignal(const PublicBoard& board,
                                            double /*adversary_mean*/) const {
  double estimate = std::nan("");
  auto tail_cut = board.Quantile(tth_);
  if (tail_cut.ok()) {
    double sum = 0.0;
    size_t count = 0;
    for (double v : reports_) {
      if (v > *tail_cut) {
        sum += v;
        ++count;
      }
    }
    if (count > 0) {
      estimate = board.PercentileRank(sum / static_cast<double>(count));
    }
  }
  return estimate;
}

Status LdpReportScoreModel::TrimAtReferenceInto(double percentile,
                                                const PublicBoard& board,
                                                TrimOutcome* out) {
  ITRIM_ASSIGN_OR_RETURN(double upper_cut, board.Quantile(percentile));
  ITRIM_ASSIGN_OR_RETURN(double lower_cut, board.Quantile(1.0 - percentile));
  out->cutoff = upper_cut;
  out->kept_count = 0;
  out->removed_count = 0;
  out->keep.assign(reports_.size(), 1);
  for (size_t i = 0; i < reports_.size(); ++i) {
    if (reports_[i] > upper_cut || reports_[i] < lower_cut) {
      out->keep[i] = 0;
      ++out->removed_count;
    } else {
      ++out->kept_count;
    }
  }
  return Status::OK();
}

void LdpReportScoreModel::Commit(const std::vector<char>& keep) {
  if (!retain_survivors_) return;
  for (size_t i = 0; i < reports_.size(); ++i) {
    if (keep[i]) retained_.push_back(reports_[i]);
  }
}

}  // namespace itrim
