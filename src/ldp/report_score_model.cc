#include "ldp/report_score_model.h"

#include <algorithm>
#include <cmath>

#include "game/kernels.h"

namespace itrim {

Status LdpReportScoreModel::BeginRun() {
  if (population_ == nullptr || population_->empty()) {
    return Status::FailedPrecondition("empty population");
  }
  retained_.clear();
  return Status::OK();
}

Status LdpReportScoreModel::Bootstrap(size_t bootstrap_size, Rng* rng,
                                      PublicBoard* board) {
  // Clean bootstrap of honest reports fixes the percentile reference
  // (the calibration sample behind Algorithm 1's QE(X0)).
  for (size_t i = 0; i < bootstrap_size; ++i) {
    double x = (*population_)[rng->UniformInt(population_->size())];
    board->RecordOne(mechanism_->Perturb(x, rng));
  }
  return Status::OK();
}

// The attack fields a fixed head count per round, not an accrued quota.
size_t LdpReportScoreModel::PoisonCount(const GameConfig& config,
                                        double* /*quota*/) const {
  return static_cast<size_t>(std::llround(
      config.attack_ratio * static_cast<double>(config.round_size)));
}

void LdpReportScoreModel::BeginRound(size_t expected) {
  reports_.clear();
  is_poison_.clear();
  reports_.reserve(expected);
  is_poison_.reserve(expected);
}

void LdpReportScoreModel::AppendBenignBatch(size_t count, Rng* rng) {
  // Each report consumes draw-then-perturb on the engine stream; the
  // mechanism's RNG use is data-dependent, so this loop is the batch (the
  // single virtual call is the round-level win, not intra-loop SIMD).
  for (size_t i = 0; i < count; ++i) {
    double x = (*population_)[rng->UniformInt(population_->size())];
    reports_.push_back(mechanism_->Perturb(x, rng));
    is_poison_.push_back(0);
  }
}

Status LdpReportScoreModel::AppendBenignBatch(std::span<const double> obs) {
  // External ingest: already-perturbed reports, appended verbatim.
  reports_.insert(reports_.end(), obs.begin(), obs.end());
  is_poison_.insert(is_poison_.end(), obs.size(), 0);
  return Status::OK();
}

Status LdpReportScoreModel::AppendPoison(double /*position*/, Rng* rng,
                                         const PublicBoard& /*board*/) {
  reports_.push_back(attack_->PoisonReport(*mechanism_, rng));
  is_poison_.push_back(1);
  return Status::OK();
}

Status LdpReportScoreModel::AppendPoisonBatch(
    std::span<const double> positions, Rng* rng,
    const PublicBoard& /*board*/) {
  // Positions are ignored (the attack materializes poison autonomously);
  // the per-report RNG order matches the AppendPoison loop exactly.
  for (size_t i = 0; i < positions.size(); ++i) {
    reports_.push_back(attack_->PoisonReport(*mechanism_, rng));
    is_poison_.push_back(1);
  }
  return Status::OK();
}

double LdpReportScoreModel::ScoreObservation(
    std::span<const double> obs) const {
  // A perturbed report IS its score.
  return obs[0];
}

Status LdpReportScoreModel::ScoreInto(std::span<const double> obs,
                                      std::span<double> out) const {
  ITRIM_RETURN_NOT_OK(CheckScoreSpans(obs, out));
  std::copy(obs.begin(), obs.end(), out.begin());
  return Status::OK();
}

// Collector-side estimate of the attack position: the board rank of the
// centroid of this round's upper-tail excess (what an Elastic defender
// can actually observe).
double LdpReportScoreModel::InjectionSignal(const PublicBoard& board,
                                            double /*adversary_mean*/) const {
  double estimate = std::nan("");
  auto tail_cut = board.Quantile(tth_);
  if (tail_cut.ok()) {
    double sum = 0.0;
    size_t count = 0;
    for (double v : reports_) {
      if (v > *tail_cut) {
        sum += v;
        ++count;
      }
    }
    if (count > 0) {
      estimate = board.PercentileRank(sum / static_cast<double>(count));
    }
  }
  return estimate;
}

Status LdpReportScoreModel::TrimAtReference(double percentile,
                                            const PublicBoard& board,
                                            TrimOutcome* out) {
  ITRIM_ASSIGN_OR_RETURN(double upper_cut, board.Quantile(percentile));
  ITRIM_ASSIGN_OR_RETURN(double lower_cut, board.Quantile(1.0 - percentile));
  out->cutoff = upper_cut;
  out->keep.resize(reports_.size());
  out->kept_count = kernels::MaskInBand(reports_.data(), reports_.size(),
                                        lower_cut, upper_cut,
                                        out->keep.data());
  out->removed_count = reports_.size() - out->kept_count;
  return Status::OK();
}

void LdpReportScoreModel::Commit(std::span<const char> keep) {
  if (!retain_survivors_) return;
  for (size_t i = 0; i < reports_.size(); ++i) {
    if (keep[i]) retained_.push_back(reports_[i]);
  }
}

}  // namespace itrim
