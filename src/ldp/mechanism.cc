#include "ldp/mechanism.h"

#include <cmath>

#include "common/math_util.h"

namespace itrim {

LaplaceMechanism::LaplaceMechanism(double epsilon)
    : epsilon_(epsilon), scale_(2.0 / epsilon) {}

double LaplaceMechanism::Perturb(double x, Rng* rng) const {
  return Clamp(x, -1.0, 1.0) + rng->Laplace(scale_);
}

DuchiMechanism::DuchiMechanism(double epsilon)
    : epsilon_(epsilon),
      c_((std::exp(epsilon) + 1.0) / (std::exp(epsilon) - 1.0)) {}

double DuchiMechanism::Perturb(double x, Rng* rng) const {
  x = Clamp(x, -1.0, 1.0);
  double e = std::exp(epsilon_);
  // P[+C] = (x (e-1) + e + 1) / (2e + 2); unbiased: E[report] = x.
  double p_plus = (x * (e - 1.0) + e + 1.0) / (2.0 * e + 2.0);
  return rng->Bernoulli(p_plus) ? c_ : -c_;
}

PiecewiseMechanism::PiecewiseMechanism(double epsilon)
    : epsilon_(epsilon) {
  double e_half = std::exp(epsilon / 2.0);
  c_ = (e_half + 1.0) / (e_half - 1.0);
  p_center_ = e_half / (e_half + 1.0);
}

double PiecewiseMechanism::Perturb(double x, Rng* rng) const {
  x = Clamp(x, -1.0, 1.0);
  // High-density band [l(x), r(x)] of width C - 1 centered on (C+1)/2 * x.
  double l = (c_ + 1.0) / 2.0 * x - (c_ - 1.0) / 2.0;
  double r = l + c_ - 1.0;
  if (rng->Bernoulli(p_center_)) {
    return rng->Uniform(l, r);
  }
  // Low-density tails [-C, l) and (r, C], sampled proportionally to length.
  double left_len = l - (-c_);
  double right_len = c_ - r;
  double total = left_len + right_len;
  if (total <= 0.0) return rng->Uniform(l, r);
  if (rng->Uniform() * total < left_len) {
    return rng->Uniform(-c_, l);
  }
  return rng->Uniform(r, c_);
}

Result<std::unique_ptr<LdpMechanism>> MakeMechanism(const std::string& name,
                                                    double epsilon) {
  if (!(epsilon > 0.0)) {
    return Status::InvalidArgument("epsilon must be positive");
  }
  if (name == "laplace") {
    return std::unique_ptr<LdpMechanism>(new LaplaceMechanism(epsilon));
  }
  if (name == "duchi") {
    return std::unique_ptr<LdpMechanism>(new DuchiMechanism(epsilon));
  }
  if (name == "piecewise") {
    return std::unique_ptr<LdpMechanism>(new PiecewiseMechanism(epsilon));
  }
  return Status::NotFound("unknown mechanism '" + name + "'");
}

}  // namespace itrim
