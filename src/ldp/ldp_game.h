// Privacy-preserving collection game under LDP (Section V case study,
// Fig 9 experiment).
//
// Each round, honest users draw a true value from the population, perturb it
// with an ε-LDP mechanism and submit the report; attackers submit poison
// reports from a manipulation attack. The collector defends either by
// interactive trimming (any CollectorStrategy over the report-percentile
// domain) or by the EMF baseline, and finally estimates the population mean
// from the surviving/weighted reports. Because reports are unbiased, the
// clean estimator is simply the report mean; the defense's job is to keep
// the poison out without trimming so much honest noise that the estimate
// degrades — the tension that produces the paper's inflection at small ε.
#ifndef ITRIM_LDP_LDP_GAME_H_
#define ITRIM_LDP_LDP_GAME_H_

#include <vector>

#include "common/rng.h"
#include "common/status.h"
#include "game/collection_game.h"
#include "game/strategies.h"
#include "ldp/attacks.h"
#include "ldp/emf.h"
#include "ldp/mechanism.h"

namespace itrim {

/// \brief LDP game configuration.
struct LdpGameConfig {
  int rounds = 20;
  size_t users_per_round = 1000;  ///< honest users per round
  double attack_ratio = 0.1;      ///< attackers per honest user
  double tth = 0.9;               ///< nominal trim percentile of reports
  size_t bootstrap_size = 1000;   ///< clean report sample seeding the board
  size_t board_capacity = 20000;
  uint64_t seed = 99;

  Status Validate() const;
};

/// \brief Outcome of one LDP collection run.
struct LdpRunResult {
  double estimated_mean = 0.0;
  double true_mean = 0.0;
  double squared_error = 0.0;
  /// Round bookkeeping (trimming path only; empty for EMF).
  GameSummary game;
  /// Estimated attack fraction (EMF path only).
  double emf_beta = 0.0;
};

/// \brief The LDP collection game.
///
/// The trimming path routes through the shared TrimmingSession engine
/// (game/session.h) with an LDP-report ScoreModel: honest reports are the
/// scores, poison comes from the LdpAttack (no percentile guidance), the
/// recorded injection position is the collector-side tail estimate, and
/// trimming keeps the symmetric [1 - q, q] report-percentile band.
class LdpCollectionGame {
 public:
  /// `population` supplies true values in [-1, 1] (sampled with
  /// replacement); all pointers are borrowed. The configuration is
  /// validated here; every Run* surfaces the validation Status.
  LdpCollectionGame(LdpGameConfig config,
                    const std::vector<double>* population,
                    const LdpMechanism* mechanism, LdpAttack* attack);

  /// \brief Runs with an interactive-trimming defense. `quality` may be
  /// null (no Titfortat trigger signal).
  Result<LdpRunResult> RunTrimming(CollectorStrategy* collector,
                                   QualityEvaluation* quality);

  /// \brief Runs with the EMF baseline (no trimming; EM-weighted mean).
  Result<LdpRunResult> RunEmf(const EmfConfig& emf_config);

  /// \brief Runs with no defense at all (the Ostrich estimate).
  Result<LdpRunResult> RunUndefended();

 private:
  /// Generates one round of reports; poison entries are flagged.
  void GenerateRound(Rng* rng, std::vector<double>* reports,
                     std::vector<char>* is_poison) const;
  double TrueMean() const;
  /// Report-domain bounds for histogramming (finite even for Laplace).
  void ReportBounds(double* lo, double* hi) const;

  LdpGameConfig config_;
  Status config_status_;
  const std::vector<double>* population_;
  const LdpMechanism* mechanism_;
  LdpAttack* attack_;
};

}  // namespace itrim

#endif  // ITRIM_LDP_LDP_GAME_H_
