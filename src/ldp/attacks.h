// Data manipulation attacks against LDP protocols (Cheu, Smith & Ullman;
// Cao, Jia & Gong).
//
//  * InputManipulationAttack — the attacker counterfeits an input value and
//    then follows the perturbation protocol honestly. Maximally evasive:
//    individual poison reports are distributed exactly like some honest
//    user's, so they are deniable and indistinguishable one-by-one.
//  * GeneralManipulationAttack — Byzantine users report any value in the
//    output domain without following the protocol (the maximal-gain attack
//    reports the domain maximum).
#ifndef ITRIM_LDP_ATTACKS_H_
#define ITRIM_LDP_ATTACKS_H_

#include <algorithm>
#include <string>

#include "common/rng.h"
#include "ldp/mechanism.h"

namespace itrim {

/// \brief Generates one poison report per call.
class LdpAttack {
 public:
  virtual ~LdpAttack() = default;
  virtual std::string name() const = 0;
  /// \brief One poison report against `mechanism`.
  virtual double PoisonReport(const LdpMechanism& mechanism, Rng* rng) = 0;
};

/// \brief Counterfeit input, honest perturbation (strong evasion).
class InputManipulationAttack : public LdpAttack {
 public:
  /// `fake_input` is the counterfeit value (clamped into [-1, 1]); the
  /// classic skew-the-mean attack uses +1.
  explicit InputManipulationAttack(double fake_input = 1.0)
      : fake_input_(fake_input) {}
  std::string name() const override { return "input_manipulation"; }
  double PoisonReport(const LdpMechanism& mechanism, Rng* rng) override {
    return mechanism.Perturb(fake_input_, rng);
  }

 private:
  double fake_input_;
};

/// \brief Byzantine output manipulation: report a chosen point of the output
/// domain (default: its maximum, the maximal-gain attack).
class GeneralManipulationAttack : public LdpAttack {
 public:
  /// `fraction_of_max` in [0, 1]: 1 reports report_hi, 0 reports 0.
  explicit GeneralManipulationAttack(double fraction_of_max = 1.0)
      : fraction_(fraction_of_max) {}
  std::string name() const override { return "general_manipulation"; }
  double PoisonReport(const LdpMechanism& mechanism, Rng*) override {
    double hi = mechanism.report_hi();
    // Unbounded domains (Laplace) have no maximum; cap at a high but
    // plausible report so the attack is not trivially detectable.
    if (!std::isfinite(hi)) hi = 1.0 + 6.0 / mechanism.epsilon();
    return fraction_ * hi;
  }

 private:
  double fraction_;
};

}  // namespace itrim

#endif  // ITRIM_LDP_ATTACKS_H_
