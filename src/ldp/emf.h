// Expectation-Maximization Filter (EMF) — re-implementation of the baseline
// defense of Du et al., "Differential Aggregation against General Colluding
// Attackers" (ICDE 2023), used as the comparison scheme in Fig 9.
//
// Model: observed reports are a two-component mixture
//     f_obs = (1 - β) · M θ + β · f_attack
// where M is the mechanism's conditional report distribution (known — the
// protocol is public), θ is the unknown *input* histogram of honest users,
// and f_attack is an unknown histogram over the report domain. EM jointly
// estimates θ (a deconvolution step), f_attack and β: honest mass is
// constrained to the manifold {M θ}, so only off-manifold report mass can be
// attributed to the attack.
//
// Built-in limitation (the axis the paper exploits): input-manipulation
// attackers perturb a counterfeit input *through the protocol*, so their
// reports lie exactly on the manifold — the filter attributes them to a
// shifted θ and cannot remove them. Blatant output manipulation (mass piled
// where no honest input could put it) is detected and down-weighted.
#ifndef ITRIM_LDP_EMF_H_
#define ITRIM_LDP_EMF_H_

#include <cstddef>
#include <vector>

#include "common/status.h"
#include "ldp/mechanism.h"

namespace itrim {

/// \brief Discretized conditional report distribution of an LDP mechanism:
/// conditional[r * input_bins + x] = P(report bin r | input bin x).
struct ReportModel {
  double report_lo = 0.0;
  double report_hi = 0.0;
  size_t report_bins = 0;
  size_t input_bins = 0;
  std::vector<double> conditional;

  /// \brief Estimates the model by Monte Carlo: `samples_per_bin`
  /// perturbations of each input-bin center, histogrammed over
  /// [report_lo, report_hi]. Pass finite bounds (clip unbounded domains).
  static Result<ReportModel> Build(const LdpMechanism& mechanism,
                                   double report_lo, double report_hi,
                                   size_t input_bins = 20,
                                   size_t report_bins = 40,
                                   size_t samples_per_bin = 4000,
                                   uint64_t seed = 99);

  /// \brief Center of input bin `x` over the domain [-1, 1].
  double InputBinCenter(size_t x) const;

  /// \brief Report bin index of a report value (clamped).
  size_t ReportBinOf(double report) const;
};

/// \brief EM filter configuration.
struct EmfConfig {
  int max_iterations = 300;  ///< deconvolution EM iterations
  double tolerance = 1e-9;   ///< stop on log-likelihood improvement below
  double beta_floor = 1e-4;  ///< keeps the posterior well-defined
  double beta_ceil = 0.9;
};

/// \brief Fitted mixture and per-report honesty weights.
struct EmfResult {
  double beta = 0.0;  ///< estimated attack fraction
  /// Posterior P(honest | report_i) per input report.
  std::vector<double> weights;
  /// Estimated attack histogram over the report bins (sums to 1).
  std::vector<double> attack_frequencies;
  /// Estimated honest *input* histogram over [-1, 1] (sums to 1).
  std::vector<double> input_frequencies;
  int iterations = 0;

  /// \brief Honesty-weighted mean of `values` (usually the reports, which
  /// are unbiased estimates of the inputs).
  double WeightedMean(const std::vector<double>& values) const;

  /// \brief Mean of the deconvolved input histogram θ.
  double InputMean(const ReportModel& model) const;
};

/// \brief Fits the EM filter to `reports` under `model`.
Result<EmfResult> FitEmFilter(const ReportModel& model,
                              const std::vector<double>& reports,
                              const EmfConfig& config);

}  // namespace itrim

#endif  // ITRIM_LDP_EMF_H_
