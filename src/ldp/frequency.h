// Frequency oracles under LDP and poisoning attacks against them.
//
// The EMF baseline's original setting (Du et al. ICDE'23) and the strongest
// known LDP poisoning results (Cao, Jia & Gong USENIX'21) concern
// *frequency estimation* over a categorical domain. This module provides
// that substrate so the library covers the full context the paper builds
// on:
//
//  * GRR — k-ary (generalized) randomized response.
//  * OUE — optimized unary encoding (per-bit randomized response with
//    p = 1/2, q = 1/(e^eps + 1)).
//  * FrequencyEstimate — the standard unbiased aggregate correction.
//  * MaximalGainAttack — Byzantine users submit the report that maximizes
//    the estimated frequency of a target item set (the MGA of Cao et al.):
//    under GRR, report the target item; under OUE, report the all-targets
//    bit vector.
//  * Input manipulation — attackers feed a counterfeit item through the
//    honest protocol (the evasive variant, as in the mean-estimation game).
#ifndef ITRIM_LDP_FREQUENCY_H_
#define ITRIM_LDP_FREQUENCY_H_

#include <cstddef>
#include <string>
#include <vector>

#include "common/rng.h"
#include "common/status.h"

namespace itrim {

/// \brief A frequency oracle over the item domain {0, ..., domain-1}.
class FrequencyOracle {
 public:
  virtual ~FrequencyOracle() = default;

  virtual std::string name() const = 0;
  virtual double epsilon() const = 0;
  virtual size_t domain() const = 0;

  /// \brief Perturbs one item into a report (a bit vector of length
  /// `report_width()`; GRR uses a one-hot encoding of the reported item).
  virtual std::vector<uint8_t> Perturb(size_t item, Rng* rng) const = 0;

  /// \brief Report width in bits.
  virtual size_t report_width() const = 0;

  /// \brief Unbiased frequency estimates from summed reports.
  ///
  /// `bit_counts[j]` is the number of reports with bit j set and `n` the
  /// number of reports. Estimates are de-biased but not clipped, so
  /// poisoning shows up as inflated (possibly > 1 or < 0) frequencies.
  virtual std::vector<double> Estimate(const std::vector<size_t>& bit_counts,
                                       size_t n) const = 0;
};

/// \brief k-ary (generalized) randomized response: report the true item
/// w.p. e^eps/(e^eps + k - 1), otherwise a uniformly random other item.
class GrrOracle : public FrequencyOracle {
 public:
  /// Requires domain >= 2 and epsilon > 0.
  static Result<GrrOracle> Make(size_t domain, double epsilon);

  std::string name() const override { return "grr"; }
  double epsilon() const override { return epsilon_; }
  size_t domain() const override { return domain_; }
  size_t report_width() const override { return domain_; }
  std::vector<uint8_t> Perturb(size_t item, Rng* rng) const override;
  std::vector<double> Estimate(const std::vector<size_t>& bit_counts,
                               size_t n) const override;

  /// \brief P[report = true item].
  double p() const { return p_; }

 private:
  GrrOracle(size_t domain, double epsilon);

  size_t domain_;
  double epsilon_;
  double p_;  // truth probability
  double q_;  // per-other-item probability
};

/// \brief Optimized unary encoding: one-hot encode, keep the hot bit w.p.
/// 1/2, flip each cold bit on w.p. 1/(e^eps + 1).
class OueOracle : public FrequencyOracle {
 public:
  static Result<OueOracle> Make(size_t domain, double epsilon);

  std::string name() const override { return "oue"; }
  double epsilon() const override { return epsilon_; }
  size_t domain() const override { return domain_; }
  size_t report_width() const override { return domain_; }
  std::vector<uint8_t> Perturb(size_t item, Rng* rng) const override;
  std::vector<double> Estimate(const std::vector<size_t>& bit_counts,
                               size_t n) const override;

  double p() const { return 0.5; }
  double q() const { return q_; }

 private:
  OueOracle(size_t domain, double epsilon);

  size_t domain_;
  double epsilon_;
  double q_;
};

/// \brief Sums reports into per-bit counts.
class ReportAggregator {
 public:
  explicit ReportAggregator(size_t width) : bit_counts_(width, 0) {}

  void Add(const std::vector<uint8_t>& report);
  const std::vector<size_t>& bit_counts() const { return bit_counts_; }
  size_t count() const { return count_; }

 private:
  std::vector<size_t> bit_counts_;
  size_t count_ = 0;
};

/// \brief Poison-report generators against frequency oracles.
class FrequencyAttack {
 public:
  virtual ~FrequencyAttack() = default;
  virtual std::string name() const = 0;
  virtual std::vector<uint8_t> PoisonReport(const FrequencyOracle& oracle,
                                            Rng* rng) = 0;
};

/// \brief Maximal gain attack (Cao et al.): craft the report that inflates
/// the target items most. GRR: report a target item outright. OUE: set
/// exactly the target bits (deterministic, maximally effective).
class MaximalGainAttack : public FrequencyAttack {
 public:
  explicit MaximalGainAttack(std::vector<size_t> targets)
      : targets_(std::move(targets)) {}
  std::string name() const override { return "mga"; }
  std::vector<uint8_t> PoisonReport(const FrequencyOracle& oracle,
                                    Rng* rng) override;

 private:
  std::vector<size_t> targets_;
};

/// \brief Evasive input manipulation: feed a counterfeit target item through
/// the honest protocol (deniable; weaker than MGA).
class FrequencyInputManipulation : public FrequencyAttack {
 public:
  explicit FrequencyInputManipulation(std::vector<size_t> targets)
      : targets_(std::move(targets)) {}
  std::string name() const override { return "input_manipulation"; }
  std::vector<uint8_t> PoisonReport(const FrequencyOracle& oracle,
                                    Rng* rng) override;

 private:
  std::vector<size_t> targets_;
};

/// \brief Frequency gain of an attack: sum over targets of
/// (estimated - true) frequency. The metric Cao et al. optimize.
double FrequencyGain(const std::vector<double>& estimated,
                     const std::vector<double>& truth,
                     const std::vector<size_t>& targets);

/// \brief Detects structurally impossible OUE reports (too many set bits):
/// a simple trimming-style sanitizer for frequency reports. Honest OUE
/// reports have ~1/2 + (d-1)/(e^eps+1) expected set bits; reports beyond
/// `sigma_bound` standard deviations are dropped.
std::vector<char> TrimOueReports(
    const std::vector<std::vector<uint8_t>>& reports, const OueOracle& oracle,
    double sigma_bound = 4.0);

}  // namespace itrim

#endif  // ITRIM_LDP_FREQUENCY_H_
