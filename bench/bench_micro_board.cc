// Microbench + exactness harness for the IndexedBoard-backed PublicBoard.
//
// The seed PublicBoard re-sorted its entire reservoir to answer the first
// Quantile()/PercentileRank() after any record — O(n log n) per touched
// query under a streaming record/query mix. The IndexedBoard backend makes
// both O(log n). This binary
//
//   1. replays randomized record/query/clear sequences (including the
//      reservoir-capacity replacement path) against a replica of the seed
//      sort-on-invalidation board and asserts bit-exact agreement, and
//   2. times the interleaved record+query workload on both at board size
//      >= 100k, asserting the indexed path is at least 10x faster
//      per query.
//
// `--smoke` runs the exactness phase plus a scaled-down timing comparison
// without the speedup assertion (CI-friendly); it is registered with ctest
// as bench/bench_micro_board_smoke.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <vector>

#include "common/rng.h"
#include "game/public_board.h"
#include "stats/quantile.h"

#include "bench/env.h"
#include "bench/flags.h"
#include "bench/reporter.h"

namespace itrim {
namespace {

// Replica of the seed PublicBoard: sort-cache invalidated by every record,
// rebuilt by the next query. Kept bit-compatible with the seed
// implementation (same reservoir stream, same sorted-oracle queries) so it
// doubles as the exactness oracle. tests/game/session_test.cc carries its
// own copy of this frozen transcription — both are snapshots of the seed
// code and must never diverge from it (or each other).
class LegacySortBoard {
 public:
  explicit LegacySortBoard(size_t capacity, uint64_t seed)
      : capacity_(capacity), rng_(seed) {}

  void RecordOne(double value) {
    ++total_recorded_;
    if (capacity_ == 0 || values_.size() < capacity_) {
      values_.push_back(value);
    } else {
      size_t j = static_cast<size_t>(rng_.UniformInt(total_recorded_));
      if (j < capacity_) values_[j] = value;
    }
    cache_valid_ = false;
  }

  Result<double> Quantile(double q) const {
    if (values_.empty()) {
      return Status::FailedPrecondition("public board is empty");
    }
    EnsureSorted();
    return QuantileSorted(sorted_cache_, q);
  }

  double PercentileRank(double x) const {
    if (values_.empty()) return 0.0;
    EnsureSorted();
    return PercentileRankSorted(sorted_cache_, x);
  }

  void Clear() {
    values_.clear();
    sorted_cache_.clear();
    cache_valid_ = false;
    total_recorded_ = 0;
  }

  size_t size() const { return values_.size(); }

 private:
  void EnsureSorted() const {
    if (cache_valid_) return;
    sorted_cache_ = values_;
    std::sort(sorted_cache_.begin(), sorted_cache_.end());
    cache_valid_ = true;
  }

  size_t capacity_;
  size_t total_recorded_ = 0;
  Rng rng_;
  std::vector<double> values_;
  mutable std::vector<double> sorted_cache_;
  mutable bool cache_valid_ = false;
};

bool BitEqual(double a, double b) {
  return std::memcmp(&a, &b, sizeof(double)) == 0;
}

// Randomized exactness sweep: both boards see the identical op stream; any
// query divergence is a bug in the indexed backend.
int RunExactness(size_t ops) {
  struct Case {
    size_t capacity;
    const char* label;
  };
  // The cap is far below the typical size between clears so the reservoir
  // replacement path (erase old slot value, insert new) is exercised.
  const Case cases[] = {{0, "unbounded"}, {64, "reservoir-capped"}};
  for (const Case& c : cases) {
    PublicBoard indexed(c.capacity, /*seed=*/99);
    LegacySortBoard legacy(c.capacity, /*seed=*/99);
    Rng rng(4242);
    size_t checked = 0;
    for (size_t i = 0; i < ops; ++i) {
      double roll = rng.Uniform();
      if (roll < 0.70) {
        // Heavy-tailed values, with occasional exact duplicates to stress
        // the multiset paths.
        double v = rng.Uniform(-5.0, 5.0);
        if (rng.Bernoulli(0.2)) v = std::floor(v);
        indexed.RecordOne(v);
        legacy.RecordOne(v);
      } else if (roll < 0.995) {
        double q = rng.Uniform();
        auto a = indexed.Quantile(q);
        auto b = legacy.Quantile(q);
        if (a.ok() != b.ok() ||
            (a.ok() && !BitEqual(*a, *b))) {
          std::fprintf(stderr,
                       "FAIL[%s]: Quantile(%.17g) diverged at op %zu\n",
                       c.label, q, i);
          return 1;
        }
        double x = rng.Uniform(-6.0, 6.0);
        if (!BitEqual(indexed.PercentileRank(x),
                      legacy.PercentileRank(x))) {
          std::fprintf(stderr,
                       "FAIL[%s]: PercentileRank(%.17g) diverged at op %zu\n",
                       c.label, x, i);
          return 1;
        }
        ++checked;
      } else {
        indexed.Clear();
        legacy.Clear();
      }
    }
    std::printf("exactness[%s]: %zu interleaved queries bit-identical "
                "(final size %zu)\n",
                c.label, checked, indexed.size());
  }
  return 0;
}

struct Timing {
  double per_query_us = 0.0;
  double checksum = 0.0;
};

// Interleaved workload: each iteration records one value then answers one
// Quantile + one PercentileRank — the streaming pattern the seed board
// degrades on (every query pays a full re-sort).
template <typename Board>
Timing TimeInterleaved(Board* board, size_t prefill, size_t iterations) {
  Rng rng(7);
  for (size_t i = 0; i < prefill; ++i) board->RecordOne(rng.Uniform());
  Timing t;
  auto start = std::chrono::steady_clock::now();
  for (size_t i = 0; i < iterations; ++i) {
    board->RecordOne(rng.Uniform());
    t.checksum += *board->Quantile(rng.Uniform());
    t.checksum += board->PercentileRank(rng.Uniform());
  }
  auto stop = std::chrono::steady_clock::now();
  t.per_query_us =
      std::chrono::duration<double, std::micro>(stop - start).count() /
      static_cast<double>(2 * iterations);
  return t;
}

}  // namespace
}  // namespace itrim

int main(int argc, char** argv) {
  using namespace itrim;
  const bench::BenchFlags flags = bench::ParseFlags(argc, argv);
  bench::BenchReporter reporter("micro_board", flags);
  const bool smoke = flags.smoke;
  const size_t exact_ops = static_cast<size_t>(
      bench::EnvInt("ITRIM_BENCH_OPS", smoke ? 4000 : 20000));
  if (RunExactness(exact_ops) != 0) return 1;
  reporter.AddCase("exactness_vs_sorted_oracle").Ok();

  const size_t board_size = smoke ? 20000 : 100000;
  const size_t iterations = static_cast<size_t>(
      bench::EnvInt("ITRIM_BENCH_QUERIES", smoke ? 20 : 60));

  PublicBoard indexed(/*capacity=*/0, /*seed=*/1);
  LegacySortBoard legacy(/*capacity=*/0, /*seed=*/1);
  Timing ti = TimeInterleaved(&indexed, board_size, iterations);
  Timing tl = TimeInterleaved(&legacy, board_size, iterations);
  if (!BitEqual(ti.checksum, tl.checksum)) {
    std::fprintf(stderr, "FAIL: timed workloads diverged (%.17g vs %.17g)\n",
                 ti.checksum, tl.checksum);
    return 1;
  }

  double speedup = tl.per_query_us / ti.per_query_us;
  std::printf("\nboard size %zu, %zu record+query iterations:\n", board_size,
              iterations);
  std::printf("  %-28s %10.3f us/query\n", "seed sort-on-invalidation:",
              tl.per_query_us);
  std::printf("  %-28s %10.3f us/query\n", "IndexedBoard backend:",
              ti.per_query_us);
  std::printf("  speedup: %.1fx\n", speedup);
  const uint64_t queries = static_cast<uint64_t>(2 * iterations);
  reporter.AddCase("indexed_interleaved")
      .Iterations(static_cast<uint64_t>(iterations))
      .Ops(queries)
      .WallMs(ti.per_query_us * static_cast<double>(queries) / 1e3)
      .Counter("board_size", static_cast<double>(board_size));
  reporter.AddCase("legacy_interleaved")
      .Iterations(static_cast<uint64_t>(iterations))
      .Ops(queries)
      .WallMs(tl.per_query_us * static_cast<double>(queries) / 1e3)
      .Counter("board_size", static_cast<double>(board_size))
      .Counter("indexed_speedup", speedup);
  if (!smoke && speedup < 10.0) {
    std::fprintf(stderr, "FAIL: expected >= 10x per-query speedup at board "
                         "size %zu, got %.1fx\n",
                 board_size, speedup);
    return 1;
  }
  return reporter.WriteJson().ok() ? 0 : 1;
}
