// Microbench + exactness harness for the PublicBoard order-statistic
// backends.
//
// The seed PublicBoard re-sorted its entire reservoir to answer the first
// Quantile()/PercentileRank() after any record — O(n log n) per touched
// query under a streaming record/query mix. The treap backend made both
// O(log n); the flat B-tree board (the default) keeps the same asymptotics
// but replaces pointer chasing with contiguous sorted leaves and a flat
// Fenwick index, which is what actually wins on a cache. This binary
//
//   1. replays randomized record/query/clear sequences (including the
//      reservoir-capacity replacement path) against a replica of the seed
//      sort-on-invalidation board and asserts all three implementations —
//      legacy, flat, treap — agree bit for bit, and
//   2. times the interleaved record+query workload on all three at board
//      size >= 100k, asserting (non-smoke) the flat board is >= 10x faster
//      per query than the seed board and >= 1.5x faster than the treap.
//
// `--smoke` runs the exactness phase plus a scaled-down timing comparison
// without the speedup assertions (CI-friendly); it is registered with
// ctest as bench/bench_micro_board_smoke. The CI perf-gate job runs the
// full (non-smoke) binary so the in-binary speedup floors enforce the
// flat-board win on every PR, alongside the bench_gate.py throughput
// comparison against bench/baselines/BENCH_micro_board.json.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <vector>

#include "common/rng.h"
#include "game/public_board.h"
#include "stats/quantile.h"

#include "bench/env.h"
#include "bench/flags.h"
#include "bench/reporter.h"

namespace itrim {
namespace {

// Replica of the seed PublicBoard: sort-cache invalidated by every record,
// rebuilt by the next query. Kept bit-compatible with the seed
// implementation (same reservoir stream, same sorted-oracle queries) so it
// doubles as the exactness oracle. tests/game/session_test.cc carries its
// own copy of this frozen transcription — both are snapshots of the seed
// code and must never diverge from it (or each other).
class LegacySortBoard {
 public:
  explicit LegacySortBoard(size_t capacity, uint64_t seed)
      : capacity_(capacity), rng_(seed) {}

  void RecordOne(double value) {
    ++total_recorded_;
    if (capacity_ == 0 || values_.size() < capacity_) {
      values_.push_back(value);
    } else {
      size_t j = static_cast<size_t>(rng_.UniformInt(total_recorded_));
      if (j < capacity_) values_[j] = value;
    }
    cache_valid_ = false;
  }

  Result<double> Quantile(double q) const {
    if (values_.empty()) {
      return Status::FailedPrecondition("public board is empty");
    }
    EnsureSorted();
    return QuantileSorted(sorted_cache_, q);
  }

  double PercentileRank(double x) const {
    if (values_.empty()) return 0.0;
    EnsureSorted();
    return PercentileRankSorted(sorted_cache_, x);
  }

  void Clear() {
    values_.clear();
    sorted_cache_.clear();
    cache_valid_ = false;
    total_recorded_ = 0;
  }

  size_t size() const { return values_.size(); }

 private:
  void EnsureSorted() const {
    if (cache_valid_) return;
    sorted_cache_ = values_;
    std::sort(sorted_cache_.begin(), sorted_cache_.end());
    cache_valid_ = true;
  }

  size_t capacity_;
  size_t total_recorded_ = 0;
  Rng rng_;
  std::vector<double> values_;
  mutable std::vector<double> sorted_cache_;
  mutable bool cache_valid_ = false;
};

bool BitEqual(double a, double b) {
  return std::memcmp(&a, &b, sizeof(double)) == 0;
}

// Randomized exactness sweep: all three boards see the identical op
// stream; any query divergence is a bug in the corresponding backend.
int RunExactness(size_t ops) {
  struct Case {
    size_t capacity;
    const char* label;
  };
  // The cap is far below the typical size between clears so the reservoir
  // replacement path (erase old slot value, insert new) is exercised.
  const Case cases[] = {{0, "unbounded"}, {64, "reservoir-capped"}};
  for (const Case& c : cases) {
    PublicBoard flat(c.capacity, /*seed=*/99, BoardBackend::kFlat);
    PublicBoard treap(c.capacity, /*seed=*/99, BoardBackend::kTreap);
    LegacySortBoard legacy(c.capacity, /*seed=*/99);
    Rng rng(4242);
    size_t checked = 0;
    for (size_t i = 0; i < ops; ++i) {
      double roll = rng.Uniform();
      if (roll < 0.70) {
        // Heavy-tailed values, with occasional exact duplicates to stress
        // the multiset paths.
        double v = rng.Uniform(-5.0, 5.0);
        if (rng.Bernoulli(0.2)) v = std::floor(v);
        flat.RecordOne(v);
        treap.RecordOne(v);
        legacy.RecordOne(v);
      } else if (roll < 0.995) {
        double q = rng.Uniform();
        auto want = legacy.Quantile(q);
        for (const PublicBoard* board : {&flat, &treap}) {
          auto got = board->Quantile(q);
          if (got.ok() != want.ok() ||
              (got.ok() && !BitEqual(*got, *want))) {
            std::fprintf(stderr,
                         "FAIL[%s/%s]: Quantile(%.17g) diverged at op %zu\n",
                         c.label, BoardBackendName(board->backend()), q, i);
            return 1;
          }
        }
        double x = rng.Uniform(-6.0, 6.0);
        double want_rank = legacy.PercentileRank(x);
        for (const PublicBoard* board : {&flat, &treap}) {
          if (!BitEqual(board->PercentileRank(x), want_rank)) {
            std::fprintf(
                stderr,
                "FAIL[%s/%s]: PercentileRank(%.17g) diverged at op %zu\n",
                c.label, BoardBackendName(board->backend()), x, i);
            return 1;
          }
        }
        ++checked;
      } else {
        flat.Clear();
        treap.Clear();
        legacy.Clear();
      }
    }
    std::printf("exactness[%s]: %zu interleaved queries bit-identical "
                "across legacy/flat/treap (final size %zu)\n",
                c.label, checked, flat.size());
  }
  return 0;
}

struct Timing {
  double per_query_us = 0.0;
  double checksum = 0.0;
};

// Interleaved workload: each iteration records one value then answers one
// Quantile + one PercentileRank — the streaming pattern the seed board
// degrades on (every query pays a full re-sort).
template <typename Board>
Timing TimeInterleaved(Board* board, size_t prefill, size_t iterations) {
  Rng rng(7);
  for (size_t i = 0; i < prefill; ++i) board->RecordOne(rng.Uniform());
  Timing t;
  auto start = std::chrono::steady_clock::now();
  for (size_t i = 0; i < iterations; ++i) {
    board->RecordOne(rng.Uniform());
    t.checksum += *board->Quantile(rng.Uniform());
    t.checksum += board->PercentileRank(rng.Uniform());
  }
  auto stop = std::chrono::steady_clock::now();
  t.per_query_us =
      std::chrono::duration<double, std::micro>(stop - start).count() /
      static_cast<double>(2 * iterations);
  return t;
}

}  // namespace
}  // namespace itrim

int main(int argc, char** argv) {
  using namespace itrim;
  const bench::BenchFlags flags = bench::ParseFlags(argc, argv);
  bench::BenchReporter reporter("micro_board", flags);
  const bool smoke = flags.smoke;
  const size_t exact_ops = static_cast<size_t>(
      bench::EnvInt("ITRIM_BENCH_OPS", smoke ? 4000 : 20000));
  if (RunExactness(exact_ops) != 0) return 1;
  reporter.AddCase("exactness_vs_sorted_oracle").Ok();

  const size_t board_size = smoke ? 20000 : 100000;
  // The O(log n) backends answer queries ~1e5x faster than the seed board
  // at this size, so they get a much larger iteration budget for a stable
  // per-query figure; the seed board's budget keeps its full re-sorts
  // bearable. A short flat run over the seed board's exact stream
  // cross-checks the timed workloads bit for bit.
  const size_t legacy_iterations = static_cast<size_t>(
      bench::EnvInt("ITRIM_BENCH_QUERIES", smoke ? 20 : 60));
  const size_t fast_iterations = static_cast<size_t>(
      bench::EnvInt("ITRIM_BENCH_FAST_QUERIES", smoke ? 4000 : 40000));

  PublicBoard flat(/*capacity=*/0, /*seed=*/1, BoardBackend::kFlat);
  PublicBoard treap(/*capacity=*/0, /*seed=*/1, BoardBackend::kTreap);
  LegacySortBoard legacy(/*capacity=*/0, /*seed=*/1);
  Timing tf = TimeInterleaved(&flat, board_size, fast_iterations);
  Timing tt = TimeInterleaved(&treap, board_size, fast_iterations);
  Timing tl = TimeInterleaved(&legacy, board_size, legacy_iterations);
  if (!BitEqual(tf.checksum, tt.checksum)) {
    std::fprintf(stderr,
                 "FAIL: flat/treap timed workloads diverged (%.17g vs "
                 "%.17g)\n",
                 tf.checksum, tt.checksum);
    return 1;
  }
  PublicBoard flat_short(/*capacity=*/0, /*seed=*/1, BoardBackend::kFlat);
  Timing ts = TimeInterleaved(&flat_short, board_size, legacy_iterations);
  if (!BitEqual(ts.checksum, tl.checksum)) {
    std::fprintf(stderr,
                 "FAIL: flat/legacy timed workloads diverged (%.17g vs "
                 "%.17g)\n",
                 ts.checksum, tl.checksum);
    return 1;
  }

  const double speedup_vs_legacy = tl.per_query_us / tf.per_query_us;
  const double speedup_vs_treap = tt.per_query_us / tf.per_query_us;
  std::printf("\nboard size %zu, mixed record+query workload:\n", board_size);
  std::printf("  %-28s %10.3f us/query  (%zu iterations)\n",
              "seed sort-on-invalidation:", tl.per_query_us,
              legacy_iterations);
  std::printf("  %-28s %10.3f us/query  (%zu iterations)\n",
              "treap backend:", tt.per_query_us, fast_iterations);
  std::printf("  %-28s %10.3f us/query  (%zu iterations)\n",
              "flat board backend:", tf.per_query_us, fast_iterations);
  std::printf("  flat vs legacy: %.1fx   flat vs treap: %.2fx\n",
              speedup_vs_legacy, speedup_vs_treap);

  const uint64_t fast_queries = static_cast<uint64_t>(2 * fast_iterations);
  const uint64_t legacy_queries =
      static_cast<uint64_t>(2 * legacy_iterations);
  reporter.AddCase("flat_interleaved")
      .Iterations(static_cast<uint64_t>(fast_iterations))
      .Ops(fast_queries)
      .WallMs(tf.per_query_us * static_cast<double>(fast_queries) / 1e3)
      .Counter("board_size", static_cast<double>(board_size))
      .Counter("speedup_vs_legacy", speedup_vs_legacy)
      .Counter("speedup_vs_treap", speedup_vs_treap);
  reporter.AddCase("treap_interleaved")
      .Iterations(static_cast<uint64_t>(fast_iterations))
      .Ops(fast_queries)
      .WallMs(tt.per_query_us * static_cast<double>(fast_queries) / 1e3)
      .Counter("board_size", static_cast<double>(board_size));
  reporter.AddCase("legacy_interleaved")
      .Iterations(static_cast<uint64_t>(legacy_iterations))
      .Ops(legacy_queries)
      .WallMs(tl.per_query_us * static_cast<double>(legacy_queries) / 1e3)
      .Counter("board_size", static_cast<double>(board_size));
  if (!smoke && speedup_vs_legacy < 10.0) {
    std::fprintf(stderr,
                 "FAIL: expected >= 10x per-query speedup over the seed "
                 "board at size %zu, got %.1fx\n",
                 board_size, speedup_vs_legacy);
    return 1;
  }
  if (!smoke && speedup_vs_treap < 1.5) {
    std::fprintf(stderr,
                 "FAIL: expected >= 1.5x per-query speedup over the treap "
                 "backend at size %zu, got %.2fx\n",
                 board_size, speedup_vs_treap);
    return 1;
  }
  return reporter.WriteJson().ok() ? 0 : 1;
}
