// Ablation: trigger-strategy variants (Section V's future-work directions).
//
// Compares the paper's rigid Titfortat against Tit-for-two-tats, Generous
// Tit-for-tat and Pavlov under the Table-III mixed adversary at several
// defection rates: average termination/first-trigger round, untrimmed
// poison fraction, and benign loss. The trade-off the paper predicts:
// forgiving variants survive noise-induced false triggers (longer
// cooperation, less benign loss) at the price of slightly more tolerated
// poison.
#include <chrono>
#include <cstdio>
#include <iostream>
#include <memory>
#include <string>

#include "bench/env.h"
#include "bench/flags.h"
#include "bench/reporter.h"
#include "common/rng.h"
#include "common/table_printer.h"
#include "data/generators.h"
#include "game/collection_game.h"
#include "game/quality.h"
#include "game/strategies.h"
#include "game/variants.h"

int main(int argc, char** argv) {
  using namespace itrim;
  bench::BenchReporter reporter("ablation_variants",
                                bench::ParseFlags(argc, argv));
  const int reps = bench::EnvInt("ITRIM_BENCH_REPS", 8);
  Dataset data = MakeControl(77);

  PrintBanner(std::cout,
              "Ablation: trigger-strategy variants vs the mixed adversary "
              "(Control, ratio 0.2)");
  TablePrinter table({"variant", "p", "avg first trigger", "untrimmed poison",
                      "benign loss"});
  for (double p : {0.3, 0.7, 1.0}) {
    for (int variant = 0; variant < 4; ++variant) {
      auto cell_start = std::chrono::steady_clock::now();
      double term = 0.0, untrimmed = 0.0, loss = 0.0;
      std::string name;
      for (int rep = 0; rep < reps; ++rep) {
        uint64_t seed = 500 + static_cast<uint64_t>(rep) * 13 +
                        static_cast<uint64_t>(p * 100.0);
        double trigger_quality = p - 0.05;
        std::unique_ptr<CollectorStrategy> collector;
        switch (variant) {
          case 0:
            collector = std::make_unique<TitfortatCollector>(
                +0.01, 0.90 - 0.9, trigger_quality);
            break;
          case 1:
            collector = std::make_unique<TitForTwoTatsCollector>(
                +0.01, 0.90 - 0.9, trigger_quality);
            break;
          case 2:
            collector = std::make_unique<GenerousTitfortatCollector>(
                +0.01, 0.90 - 0.9, trigger_quality, /*generosity=*/0.3,
                /*penalty_rounds=*/3, seed ^ 0xF00D);
            break;
          default:
            collector = std::make_unique<PavlovCollector>(
                +0.01, 0.90 - 0.9, trigger_quality);
            break;
        }
        name = collector->name();
        MixedPercentileAdversary adversary(p);
        NoisyDefectShareQuality quality(
            0.90, 0.99, 0.005, 0.02, seed ^ 0xBEEF,
            DefectShareQuality::CutoffMode::kAbsolute);
        GameConfig config;
        config.rounds = 25;
        config.round_size = 2000;
        config.attack_ratio = 0.2;
        config.tth = 0.9;
        config.round_mass_trimming = true;
        config.seed = seed;
        DistanceCollectionGame game(config, &data, collector.get(),
                                    &adversary, &quality);
        auto summary = game.Run();
        if (!summary.ok()) {
          std::cerr << "ERROR: " << summary.status().ToString() << "\n";
          return 1;
        }
        term += summary->termination_round > 0
                    ? summary->termination_round
                    : config.rounds;
        untrimmed += summary->UntrimmedPoisonFraction();
        loss += summary->BenignLossFraction();
      }
      table.BeginRow();
      table.AddCell(name);
      table.AddNumber(p, 1);
      table.AddNumber(term / reps, 2);
      table.AddNumber(untrimmed / reps, 4);
      table.AddNumber(loss / reps, 4);
      char case_name[64];
      std::snprintf(case_name, sizeof(case_name), "%s/p=%.1f", name.c_str(),
                    p);
      reporter.AddCase(case_name)
          .Iterations(static_cast<uint64_t>(reps))
          .Ops(static_cast<uint64_t>(reps))
          .WallMs(std::chrono::duration<double, std::milli>(
                      std::chrono::steady_clock::now() - cell_start)
                      .count())
          .Counter("avg_first_trigger", term / reps)
          .Counter("untrimmed_poison", untrimmed / reps);
    }
  }
  table.Print(std::cout);
  return reporter.WriteJson().ok() ? 0 : 1;
}
