// Table III: non-equilibrium results and average termination rounds.
//
// Control dataset, attack ratio 0.2. The adversary mixes: poison at the 99th
// percentile with probability p, at the 90th with probability 1-p. Titfortat
// allows a 5% redundancy; its trigger fires on the first round whose
// estimated defect ratio exceeds (1-p) + 0.05, after which it trims at the
// 90th percentile permanently. Reported: the untrimmed-poison proportion of
// Titfortat and Elastic, and Titfortat's average termination round.
#include <chrono>
#include <iostream>

#include "bench/env.h"
#include "bench/flags.h"
#include "bench/reporter.h"
#include "common/table_printer.h"
#include "exp/experiments.h"

int main(int argc, char** argv) {
  using namespace itrim;
  const bench::BenchFlags flags = bench::ParseFlags(argc, argv);
  bench::BenchReporter reporter("table3_nonequilibrium", flags);
  NonEquilibriumConfig config;
  config.repetitions = bench::EnvInt("ITRIM_BENCH_REPS", 25);
  config.threads = flags.jobs;
  std::vector<double> ps;
  for (int i = 0; i <= 10; ++i) ps.push_back(0.1 * i);

  PrintBanner(std::cout,
              "Table III: non-equilibrium mixed strategies (Control, attack "
              "ratio 0.2, redundancy 5%)");
  auto run_start = std::chrono::steady_clock::now();
  auto rows = RunNonEquilibriumExperiment(config, ps);
  const double run_ms = std::chrono::duration<double, std::milli>(
                            std::chrono::steady_clock::now() - run_start)
                            .count();
  if (!rows.ok()) {
    std::cerr << "ERROR: " << rows.status().ToString() << "\n";
    return 1;
  }
  reporter.AddCase("experiment")
      .Iterations(static_cast<uint64_t>(config.repetitions))
      .Ops(static_cast<uint64_t>(ps.size()) *
           static_cast<uint64_t>(config.repetitions))
      .WallMs(run_ms);
  TablePrinter table({"p", "Avg termination rounds", "Titfortat", "Elastic",
                      "paper:term", "paper:tft", "paper:elastic"});
  const char* paper_term[] = {"25",    "24.24", "21.56", "23.44",
                              "19.44", "20.6",  "17.52", "14.44",
                              "16.52", "14.28", "13"};
  const char* paper_tft[] = {"0.22727", "0.19157", "0.19645", "0.19264",
                             "0.18381", "0.17904", "0.17363", "0.16874",
                             "0.17011", "0.17041", "0.18182"};
  const char* paper_ela[] = {"0.22727", "0.22309", "0.21844", "0.21232",
                             "0.20924", "0.20483", "0.19017", "0.17114",
                             "0.15952", "0.15036", "0.14449"};
  for (size_t i = 0; i < rows->size(); ++i) {
    const auto& r = (*rows)[i];
    table.BeginRow();
    table.AddNumber(r.p, 1);
    table.AddNumber(r.avg_termination_round, 2);
    table.AddNumber(r.titfortat_untrimmed, 5);
    table.AddNumber(r.elastic_untrimmed, 5);
    table.AddCell(paper_term[i]);
    table.AddCell(paper_tft[i]);
    table.AddCell(paper_ela[i]);
  }
  table.Print(std::cout);
  std::cout << "\nshape checks: termination falls as p -> 1; Elastic's "
               "untrimmed poison decreases monotonically in p; an adversary "
               "deviating from equilibrium play gains no advantage.\n";
  return reporter.WriteJson().ok() ? 0 : 1;
}
