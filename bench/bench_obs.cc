// Observability overhead benchmark and identity gate.
//
// Four phases:
//
//   1. Identity gate (both modes): the same arrival schedule is pushed
//      through an uninstrumented IngestService and through a fully
//      instrumented one (deep round observation, trace ring, hibernation
//      churn, a concurrent scraper thread hammering Scrape() and the
//      exporters) and both books must be bit-identical to a solo replay.
//      Observability is write-only or it is a bug.
//   2. Steady-state allocation gate (both modes): a serial fleet with
//      fleet-, session- and trace-sinks attached steps rounds after a
//      warmup; the timed region must perform zero heap allocations — the
//      same contract tests/game/zero_alloc_test.cc proves, held here under
//      the bench sizing.
//   3. Overhead measurement: interleaved OFF/ON repetitions of a sustained
//      ingest run (OFF = always-on counters only, ON = deep observation:
//      per-event submit clocks, per-round wall clocks, histograms, trace
//      records, session sinks). Reports per-arm throughput and the
//      relative overhead; the full (non-smoke) mode enforces the <=5%
//      acceptance ceiling in-binary. The CI perf gate holds both arms
//      against bench/baselines/BENCH_obs.json.
//   4. Scrape export: the ON arm's final scrape is published as
//      OBS_scrape.prom (linted by tools/promlint.py in CI) and its
//      submit/batch/round distributions are attached to the BENCH JSON as
//      histogram entries (validated by tools/bench_gate.py).
//
// `--smoke` shrinks every phase and is registered with ctest as
// bench/bench_obs_smoke. Knobs: ITRIM_BENCH_TENANTS, ITRIM_BENCH_ROUNDS,
// ITRIM_BENCH_OBS_REPS, --jobs N (shard count).
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "bench/alloc_counter.h"
#include "bench/env.h"
#include "bench/flags.h"
#include "bench/reporter.h"
#include "common/rng.h"
#include "fleet/session_fleet.h"
#include "fleet/tenant.h"
#include "game/session.h"
#include "ingest/ingest.h"
#include "obs/export.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace itrim {
namespace {

bool BitEqual(double a, double b) {
  return std::memcmp(&a, &b, sizeof(double)) == 0;
}

// Scalar-only tenant mix: the cheapest deterministic workload, so the
// timed phases measure the observability layer against a hot game loop
// rather than model-specific costs.
struct ObsFixture {
  std::vector<double> pool;

  ObsFixture() {
    Rng rng(71);
    pool.reserve(4000);
    for (int i = 0; i < 4000; ++i) pool.push_back(rng.Uniform());
  }

  std::vector<TenantSpec> BuildSpecs(size_t tenants,
                                     int round_size = 30) const {
    std::vector<TenantSpec> specs;
    specs.reserve(tenants);
    for (size_t i = 0; i < tenants; ++i) {
      TenantSpec spec;
      spec.name = "t" + std::to_string(i);
      spec.model = TenantModelKind::kScalar;
      spec.scalar_pool = &pool;
      spec.game.round_size = static_cast<size_t>(round_size);
      spec.game.bootstrap_size = 40;
      spec.game.board_capacity = 512;
      spec.game.attack_ratio = 0.10 + 0.05 * static_cast<double>(i % 3);
      spec.game.round_mass_trimming = (i % 2) == 0;
      specs.push_back(spec);
    }
    return specs;
  }

  SessionFleet MakeFleet(size_t tenants) const {
    FleetConfig config;
    config.threads = 1;
    config.seed = 4242;
    return SessionFleet(config, BuildSpecs(tenants));
  }
};

// First bitwise difference between two per-tenant record books, or "".
std::string FirstDifference(const std::vector<std::vector<RoundRecord>>& a,
                            const std::vector<std::vector<RoundRecord>>& b) {
  if (a.size() != b.size()) return "tenant count";
  for (size_t i = 0; i < a.size(); ++i) {
    if (a[i].size() != b[i].size()) {
      return "tenant " + std::to_string(i) + " round count (" +
             std::to_string(a[i].size()) + " vs " +
             std::to_string(b[i].size()) + ")";
    }
    for (size_t r = 0; r < a[i].size(); ++r) {
      const RoundRecord& ra = a[i][r];
      const RoundRecord& rb = b[i][r];
      if (ra.round != rb.round ||
          !BitEqual(ra.collector_percentile, rb.collector_percentile) ||
          !BitEqual(ra.injection_percentile, rb.injection_percentile) ||
          !BitEqual(ra.cutoff, rb.cutoff) ||
          !BitEqual(ra.quality, rb.quality) ||
          ra.benign_received != rb.benign_received ||
          ra.poison_received != rb.poison_received ||
          ra.benign_kept != rb.benign_kept ||
          ra.poison_kept != rb.poison_kept) {
        return "tenant " + std::to_string(i) + " round " + std::to_string(r);
      }
    }
  }
  return "";
}

std::vector<std::vector<RoundRecord>> SoloReplay(const ObsFixture& fixture,
                                                 size_t tenants, int rounds) {
  SessionFleet fleet = fixture.MakeFleet(tenants);
  std::vector<std::vector<RoundRecord>> books(tenants);
  if (!fleet.Bootstrap().ok() || !fleet.BeginPerTenantStepping().ok()) {
    return books;
  }
  for (size_t i = 0; i < tenants; ++i) {
    for (int r = 0; r < rounds; ++r) {
      if (!fleet.StepTenant(i).ok()) return books;
    }
    books[i] = fleet.TenantRounds(i).ValueOrDie();
  }
  return books;
}

// Drives one ingest run (round-robin bursts, two events per tenant round)
// and returns the per-tenant books. `instrumented` turns on every
// observability feature at once — deep round observation, a trace ring,
// hibernation churn, and a scraper thread racing the run.
struct IdentityResult {
  std::vector<std::vector<RoundRecord>> books;
  uint64_t trace_starts = 0;
  uint64_t trace_ends = 0;
  uint64_t trace_dropped = 0;
  uint64_t scrapes = 0;
  bool ok = false;
};

IdentityResult RunIngestArm(const ObsFixture& fixture, size_t tenants,
                            int rounds, bool instrumented) {
  IdentityResult result;
  SessionFleet fleet = fixture.MakeFleet(tenants);
  if (!fleet.Bootstrap().ok()) return result;
  IngestConfig config;
  config.shards = 2;
  config.batch_max = 32;
  config.max_resident_per_shard = 2;  // hibernation churn in both arms
  if (instrumented) {
    config.observe_rounds = true;
    config.trace_capacity = 1 << 14;
  }
  IngestService service(config, &fleet);
  if (!service.Start().ok()) return result;

  std::atomic<bool> stop_scraper{false};
  std::atomic<uint64_t> scrapes{0};
  std::thread scraper;
  if (instrumented) {
    scraper = std::thread([&] {
      while (!stop_scraper.load(std::memory_order_relaxed)) {
        obs::MetricsSnapshot snap = service.Scrape();
        (void)obs::PrometheusText(snap);
        (void)obs::MetricsJson(snap);
        (void)service.TraceSnapshot();
        ++scrapes;
      }
    });
  }

  bool push_ok = true;
  std::vector<TenantSpec> specs = fixture.BuildSpecs(tenants);
  for (int r = 0; r < rounds && push_ok; ++r) {
    for (size_t i = 0; i < tenants && push_ok; ++i) {
      const uint32_t burst = static_cast<uint32_t>(specs[i].game.round_size);
      push_ok = service.Submit({i, burst / 2}).ok() &&
                service.Submit({i, burst - burst / 2}).ok();
    }
  }
  push_ok = push_ok && service.Flush().ok();
  if (instrumented) {
    stop_scraper.store(true, std::memory_order_relaxed);
    scraper.join();
    result.scrapes = scrapes.load();
    for (const obs::TraceEvent& ev : service.TraceSnapshot()) {
      if (ev.kind == obs::TraceKind::kRoundStart) ++result.trace_starts;
      if (ev.kind == obs::TraceKind::kRoundEnd) ++result.trace_ends;
    }
    result.trace_dropped = service.TraceDropped();
  }
  if (!push_ok || !service.Stop().ok()) return result;

  result.books.resize(tenants);
  for (size_t i = 0; i < tenants; ++i) {
    auto records = fleet.TenantRounds(i);
    if (!records.ok()) return result;
    result.books[i] = std::move(records).ValueOrDie();
  }
  result.ok = true;
  return result;
}

// Phase 1: instrumented and uninstrumented ingestion vs the solo replay.
int RunIdentity(const ObsFixture& fixture, size_t tenants, int rounds,
                bench::BenchReporter* reporter) {
  const auto expected = SoloReplay(fixture, tenants, rounds);
  IdentityResult off = RunIngestArm(fixture, tenants, rounds, false);
  IdentityResult on = RunIngestArm(fixture, tenants, rounds, true);
  if (!off.ok || !on.ok) {
    std::fprintf(stderr, "FAIL: identity arm did not complete\n");
    return 1;
  }
  std::string diff = FirstDifference(expected, off.books);
  if (!diff.empty()) {
    std::fprintf(stderr, "FAIL: uninstrumented ingest diverged from solo "
                 "replay at %s\n", diff.c_str());
    return 1;
  }
  diff = FirstDifference(expected, on.books);
  if (!diff.empty()) {
    std::fprintf(stderr, "FAIL: instrumented ingest diverged from solo "
                 "replay at %s — observability perturbed the game\n",
                 diff.c_str());
    return 1;
  }
  const uint64_t total_rounds =
      static_cast<uint64_t>(tenants) * static_cast<uint64_t>(rounds);
  if (obs::kEnabled &&
      (on.trace_dropped != 0 || on.trace_starts != total_rounds ||
       on.trace_ends != total_rounds)) {
    std::fprintf(stderr,
                 "FAIL: trace ring incomplete (%llu starts, %llu ends, "
                 "%llu dropped; want %llu/%llu/0)\n",
                 static_cast<unsigned long long>(on.trace_starts),
                 static_cast<unsigned long long>(on.trace_ends),
                 static_cast<unsigned long long>(on.trace_dropped),
                 static_cast<unsigned long long>(total_rounds),
                 static_cast<unsigned long long>(total_rounds));
    return 1;
  }
  std::printf("identity: %zu tenants x %d rounds bit-identical with "
              "observability on and off (%llu scrapes raced the run)\n",
              tenants, rounds,
              static_cast<unsigned long long>(on.scrapes));
  reporter->AddCase("identity/obs_on_vs_off").Ok().Counter(
      "scrapes", static_cast<double>(on.scrapes));
  reporter->AddCase("identity/trace_complete").Ok();
  return 0;
}

// Phase 2: zero allocations in the instrumented steady state.
int RunSteadyStateAllocs(const ObsFixture& fixture, size_t tenants,
                         int rounds, bench::BenchReporter* reporter) {
  obs::MetricsRegistry registry;
  obs::MetricSlot* fleet_slot = registry.AddSlot("fleet");
  obs::MetricSlot* session_slot = registry.AddSlot("sessions");
  obs::TraceBuffer trace(1024);
  // Generous horizon: sessions reserve their record books for
  // game.rounds and the fleet reserves its aggregate log for
  // FleetConfig::rounds, so the timed region never grows either.
  const int horizon = 30 + rounds + 8;
  std::vector<TenantSpec> specs = fixture.BuildSpecs(tenants);
  for (TenantSpec& spec : specs) spec.game.rounds = horizon;
  FleetConfig fleet_config;
  fleet_config.threads = 1;
  fleet_config.seed = 4242;
  fleet_config.rounds = horizon;
  SessionFleet fleet(fleet_config, specs);
  if (!fleet.Bootstrap().ok()) return 1;
  fleet.AttachObservability(fleet_slot);
  for (size_t i = 0; i < tenants; ++i) {
    SessionObs sinks;
    sinks.metrics = session_slot;
    sinks.trace = &trace;
    sinks.tenant = i;
    if (!fleet.AttachTenantObservability(i, sinks).ok()) return 1;
  }
  // Warmup: boards fill, scratch reaches capacity, the trace ring wraps.
  for (int r = 0; r < 30; ++r) {
    if (!fleet.StepRound().ok()) return 1;
  }
  bench::AllocCounts before = bench::ThreadAllocCounts();
  const auto start = std::chrono::steady_clock::now();
  for (int r = 0; r < rounds; ++r) {
    if (!fleet.StepRound().ok()) return 1;
  }
  const auto stop = std::chrono::steady_clock::now();
  const uint64_t allocations =
      (bench::ThreadAllocCounts() - before).allocations;
  const double wall_ms =
      std::chrono::duration<double, std::milli>(stop - start).count();
  const uint64_t ops =
      static_cast<uint64_t>(tenants) * static_cast<uint64_t>(rounds);
  reporter->AddCase("steady_state/instrumented_step")
      .Iterations(static_cast<uint64_t>(rounds))
      .Ops(ops)
      .WallMs(wall_ms)
      .Allocations(allocations)
      .Counter("tenants", static_cast<double>(tenants));
  std::printf("steady state: %d instrumented rounds x %zu tenants, "
              "%llu allocations (want 0)\n",
              rounds, tenants, static_cast<unsigned long long>(allocations));
  if (allocations != 0) {
    std::fprintf(stderr, "FAIL: instrumented steady-state step allocated "
                 "%llu times\n",
                 static_cast<unsigned long long>(allocations));
    return 1;
  }
  return 0;
}

// Phase 3: one sustained ingest arm. OFF keeps only the always-on
// counters; ON adds per-event clocks, histograms, traces and session sinks.
struct ArmResult {
  double wall_ms = 0.0;
  uint64_t reports = 0;
  obs::MetricsSnapshot scrape;  // ON arm only
  std::string prom;             // ON arm only
  bool ok = false;
};

// The overhead arms play rounds of GameConfig's default 500 reports, so
// the measured ratio reflects the per-round cost at the paper's round
// size rather than the degenerate all-queue-overhead regime the identity
// phase stresses (round_size 30 scalar rounds run in about a microsecond;
// any fixed per-round cost looks huge against them).
constexpr int kOverheadRoundSize = 500;

ArmResult RunOverheadArm(const ObsFixture& fixture, size_t tenants,
                         int rounds, int shards, bool deep) {
  ArmResult result;
  FleetConfig fleet_config;
  fleet_config.threads = 1;
  fleet_config.seed = 4242;
  SessionFleet fleet(fleet_config,
                     fixture.BuildSpecs(tenants, kOverheadRoundSize));
  if (!fleet.Bootstrap().ok()) return result;
  IngestConfig config;
  config.shards = shards;
  config.queue_capacity = 4096;
  config.batch_max = 256;
  if (deep) {
    config.observe_rounds = true;
    // A production-sized ring, small enough (128 KiB) that cycling through
    // it does not evict the game's working set.
    config.trace_capacity = 1 << 12;
  }
  IngestService service(config, &fleet);
  if (!service.Start().ok()) return result;

  std::vector<TenantSpec> specs =
      fixture.BuildSpecs(tenants, kOverheadRoundSize);
  // Warmup pass (un-timed), as in bench_ingest.
  for (size_t i = 0; i < tenants; ++i) {
    const uint32_t burst = static_cast<uint32_t>(specs[i].game.round_size);
    if (!service.Submit({i, burst}).ok()) return result;
  }
  if (!service.Flush().ok()) return result;

  uint64_t reports = 0;
  const auto start = std::chrono::steady_clock::now();
  for (int r = 0; r < rounds; ++r) {
    for (size_t i = 0; i < tenants; ++i) {
      const uint32_t burst = static_cast<uint32_t>(specs[i].game.round_size);
      const uint32_t halves[2] = {burst / 2, burst - burst / 2};
      for (uint32_t half : halves) {
        if (!service.Submit({i, half}).ok()) return result;
        reports += half;
      }
    }
  }
  if (!service.Flush().ok()) return result;
  const auto stop = std::chrono::steady_clock::now();
  result.wall_ms =
      std::chrono::duration<double, std::milli>(stop - start).count();
  result.reports = reports;
  if (deep) {
    result.scrape = service.Scrape();
    result.prom = obs::PrometheusText(result.scrape);
  }
  result.ok = service.Stop().ok();
  return result;
}

bench::BenchHistogram ToBenchHistogram(const obs::MetricsSnapshot& snap,
                                       obs::Histogram h) {
  bench::BenchHistogram out;
  const obs::HistogramInfo& info = obs::MetaOf(h);
  out.bounds.assign(info.bounds.begin(), info.bounds.end());
  const auto& hv = snap.merged.histograms[static_cast<size_t>(h)];
  out.counts = hv.counts;
  out.counts.resize(info.bounds.size() + 1, 0);  // OFF builds: all zero
  out.sum = hv.sum;
  out.count = hv.count;
  return out;
}

}  // namespace
}  // namespace itrim

int main(int argc, char** argv) {
  using namespace itrim;
  const bench::BenchFlags flags = bench::ParseFlags(argc, argv);
  const bool smoke = flags.smoke;
  const int shards = flags.jobs > 0 ? flags.jobs : 2;
  const size_t tenants = static_cast<size_t>(
      bench::EnvInt("ITRIM_BENCH_TENANTS", smoke ? 120 : 600));
  const int rounds = bench::EnvInt("ITRIM_BENCH_ROUNDS", smoke ? 3 : 8);
  const int reps = bench::EnvInt("ITRIM_BENCH_OBS_REPS", smoke ? 1 : 5);

  bench::BenchReporter reporter("obs", flags);
  ObsFixture fixture;

  std::printf("observability compiled %s (ITRIM_OBS=%d)\n",
              obs::kEnabled ? "in" : "out", obs::kEnabled ? 1 : 0);

  if (RunIdentity(fixture, smoke ? 16 : 48, smoke ? 3 : 4, &reporter) != 0) {
    return 1;
  }
  if (RunSteadyStateAllocs(fixture, smoke ? 8 : 16, smoke ? 40 : 120,
                           &reporter) != 0) {
    return 1;
  }

  // Interleaved OFF/ON repetitions; the best (minimum) wall per arm is the
  // standard noise-floor estimator on shared machines.
  ArmResult best_off, best_on;
  for (int rep = 0; rep < reps; ++rep) {
    ArmResult off = RunOverheadArm(fixture, tenants, rounds, shards, false);
    ArmResult on = RunOverheadArm(fixture, tenants, rounds, shards, true);
    if (!off.ok || !on.ok) {
      std::fprintf(stderr, "FAIL: overhead arm did not complete\n");
      return 1;
    }
    if (!best_off.ok || off.wall_ms < best_off.wall_ms) best_off = off;
    if (!best_on.ok || on.wall_ms < best_on.wall_ms) {
      best_on = std::move(on);
    }
  }
  const double off_rps =
      static_cast<double>(best_off.reports) / (best_off.wall_ms / 1000.0);
  const double on_rps =
      static_cast<double>(best_on.reports) / (best_on.wall_ms / 1000.0);
  const double overhead_pct =
      (best_on.wall_ms - best_off.wall_ms) / best_off.wall_ms * 100.0;
  reporter.AddCase("overhead/ingest_off")
      .Iterations(static_cast<uint64_t>(rounds))
      .Ops(best_off.reports)
      .WallMs(best_off.wall_ms)
      .Counter("tenants", static_cast<double>(tenants))
      .Counter("shards", static_cast<double>(shards))
      .Counter("reports_per_sec", off_rps);
  reporter.AddCase("overhead/ingest_on")
      .Iterations(static_cast<uint64_t>(rounds))
      .Ops(best_on.reports)
      .WallMs(best_on.wall_ms)
      .Counter("tenants", static_cast<double>(tenants))
      .Counter("shards", static_cast<double>(shards))
      .Counter("reports_per_sec", on_rps);
  reporter.AddCase("overhead/delta")
      .Counter("overhead_pct", overhead_pct)
      .Counter("limit_pct", 5.0)
      .Counter("repetitions", static_cast<double>(reps));
  std::printf("overhead: off %.1f ms (%.0fk reports/s), on %.1f ms "
              "(%.0fk reports/s) — %+.2f%% (%d interleaved reps)\n",
              best_off.wall_ms, off_rps / 1000.0, best_on.wall_ms,
              on_rps / 1000.0, overhead_pct, reps);
  // The ceiling runs only in the full mode: smoke runs on saturated CI
  // boxes where a sub-second wall makes the ratio meaningless (the perf
  // gate still holds both arms against their own baselines).
  if (!smoke && overhead_pct > 5.0) {
    std::fprintf(stderr, "FAIL: deep observation costs %.2f%% ingest "
                 "throughput, above the 5%% ceiling\n", overhead_pct);
    return 1;
  }

  // Phase 4: publish the ON arm's scrape and its distributions.
  std::string out_dir = bench::EnvString("ITRIM_BENCH_OUT_DIR", ".");
  if (!out_dir.empty() && out_dir.back() != '/') out_dir += '/';
  const std::string prom_path = out_dir + "OBS_scrape.prom";
  if (!obs::WriteTextFile(prom_path, best_on.prom).ok()) {
    std::fprintf(stderr, "FAIL: cannot write %s\n", prom_path.c_str());
    return 1;
  }
  std::printf("scrape exposition: %s (%zu bytes, %zu slots)\n",
              prom_path.c_str(), best_on.prom.size(),
              best_on.scrape.slots.size());
  reporter.AddCase("scrape/export")
      .Ok()
      .Counter("prom_bytes", static_cast<double>(best_on.prom.size()))
      .Counter("slots", static_cast<double>(best_on.scrape.slots.size()))
      .Histogram("submit_latency_us",
                 ToBenchHistogram(best_on.scrape,
                                  obs::Histogram::kIngestSubmitLatencyUs))
      .Histogram("pop_batch_size",
                 ToBenchHistogram(best_on.scrape,
                                  obs::Histogram::kIngestPopBatchSize))
      .Histogram("round_wall_us",
                 ToBenchHistogram(best_on.scrape,
                                  obs::Histogram::kIngestRoundWallUs));
  return reporter.WriteJson().ok() ? 0 : 1;
}
