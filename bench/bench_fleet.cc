// SessionFleet scaling benchmark (tenants x threads) and determinism gate.
//
// The fleet's contract is that sharded parallel stepping changes only
// wall-clock, never results. This binary
//
//   1. runs a 1000-tenant heterogeneous fleet (scalar / distance / LDP
//      tenants cycling through every scheme) at 1 thread and at N threads
//      and asserts the two FleetSummarys are bit-identical,
//   2. checkpoints the same fleet mid-stream, restores it into a fresh
//      fleet, finishes the run and asserts bit-identity again, and
//   3. times StepRound throughput over a tenants x threads grid and prints
//      the scaling table (the README "Fleet" section quotes it).
//
// `--smoke` runs phases 1 and 2 plus a single small timing cell; it is
// registered with ctest as bench/bench_fleet_smoke. Knobs:
// ITRIM_BENCH_TENANTS, ITRIM_BENCH_ROUNDS, --jobs N (caps the thread
// column of the full table).
//
// Telemetry: every run writes BENCH_fleet.json (bench/reporter.h). The
// 1-thread steady-state timing case carries the heap-allocation count of
// its timed region; the CI perf gate (tools/bench_gate.py) holds both that
// count at zero and the tenant-round throughput against
// bench/baselines/BENCH_fleet.json.
#include <chrono>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "bench/alloc_counter.h"
#include "bench/env.h"
#include "bench/flags.h"
#include "bench/reporter.h"
#include "common/rng.h"
#include "data/generators.h"
#include "exp/schemes.h"
#include "fleet/session_fleet.h"
#include "ldp/attacks.h"
#include "ldp/mechanism.h"

namespace itrim {
namespace {

bool BitEqual(double a, double b) {
  return std::memcmp(&a, &b, sizeof(double)) == 0;
}

// Shared read-only data sources plus the per-tenant LDP attack instances
// (attacks are not promised to be stateless, so every LDP tenant gets its
// own).
struct FleetFixture {
  std::vector<double> pool;
  Dataset data;
  std::vector<double> population;
  PiecewiseMechanism mechanism{2.0};
  std::vector<std::unique_ptr<LdpAttack>> attacks;

  FleetFixture() {
    Rng rng(71);
    pool.reserve(4000);
    for (int i = 0; i < 4000; ++i) pool.push_back(rng.Uniform());
    data = MakeControl(29, 60);
    population.reserve(3000);
    for (int i = 0; i < 3000; ++i) population.push_back(rng.Uniform(-1.0, 1.0));
  }

  std::vector<TenantSpec> BuildSpecs(size_t tenants) {
    const std::vector<SchemeId> schemes = AllSchemes();
    std::vector<TenantSpec> specs;
    specs.reserve(tenants);
    for (size_t i = 0; i < tenants; ++i) {
      TenantSpec spec;
      spec.name = "t" + std::to_string(i);
      spec.model = static_cast<TenantModelKind>(i % 3);
      spec.scheme = schemes[i % schemes.size()];
      spec.game.round_size = 30;
      spec.game.bootstrap_size = 40;
      spec.game.board_capacity = 512;
      spec.game.attack_ratio = 0.10 + 0.05 * static_cast<double>(i % 3);
      spec.game.round_mass_trimming = (i % 2) == 0;
      switch (spec.model) {
        case TenantModelKind::kScalar:
          spec.scalar_pool = &pool;
          break;
        case TenantModelKind::kDistance:
          spec.dataset = &data;
          break;
        case TenantModelKind::kLdp:
          spec.ldp_population = &population;
          spec.ldp_mechanism = &mechanism;
          attacks.push_back(std::make_unique<InputManipulationAttack>(1.0));
          spec.ldp_attack = attacks.back().get();
          break;
      }
      specs.push_back(spec);
    }
    return specs;
  }
};

// First bitwise difference between two fleet summaries, or "" when
// identical. Aggregates are derived from the per-tenant records, so
// comparing records + aggregate totals covers the whole reduction.
std::string FirstDifference(const FleetSummary& a, const FleetSummary& b) {
  if (a.tenants.size() != b.tenants.size()) return "tenant count";
  for (size_t i = 0; i < a.tenants.size(); ++i) {
    const GameSummary& ga = a.tenants[i];
    const GameSummary& gb = b.tenants[i];
    if (ga.termination_round != gb.termination_round ||
        ga.rounds.size() != gb.rounds.size()) {
      return "tenant " + std::to_string(i) + " shape";
    }
    for (size_t r = 0; r < ga.rounds.size(); ++r) {
      const RoundRecord& ra = ga.rounds[r];
      const RoundRecord& rb = gb.rounds[r];
      if (!BitEqual(ra.collector_percentile, rb.collector_percentile) ||
          !BitEqual(ra.injection_percentile, rb.injection_percentile) ||
          !BitEqual(ra.cutoff, rb.cutoff) ||
          !BitEqual(ra.quality, rb.quality) ||
          ra.benign_received != rb.benign_received ||
          ra.poison_received != rb.poison_received ||
          ra.benign_kept != rb.benign_kept ||
          ra.poison_kept != rb.poison_kept) {
        return "tenant " + std::to_string(i) + " round " + std::to_string(r);
      }
    }
  }
  if (a.rounds.size() != b.rounds.size()) return "aggregate count";
  for (size_t r = 0; r < a.rounds.size(); ++r) {
    if (!BitEqual(a.rounds[r].trim_rate, b.rounds[r].trim_rate) ||
        !BitEqual(a.rounds[r].poison_acceptance,
                  b.rounds[r].poison_acceptance) ||
        !BitEqual(a.rounds[r].tenant_trim_rate.p50,
                  b.rounds[r].tenant_trim_rate.p50) ||
        !BitEqual(a.rounds[r].tenant_quality.p90,
                  b.rounds[r].tenant_quality.p90)) {
      return "aggregate round " + std::to_string(r);
    }
  }
  if (a.total_received != b.total_received || a.total_kept != b.total_kept ||
      a.total_poison_kept != b.total_poison_kept) {
    return "totals";
  }
  return "";
}

FleetConfig MakeConfig(int rounds, int threads) {
  FleetConfig config;
  config.rounds = rounds;
  config.threads = threads;
  config.seed = 4242;
  return config;
}

// Phase 1+2: the determinism gate of the acceptance criteria.
int RunDeterminism(FleetFixture* fixture, size_t tenants, int rounds,
                   int threads) {
  SessionFleet serial(MakeConfig(rounds, 1), fixture->BuildSpecs(tenants));
  auto serial_summary = serial.RunToCompletion();
  if (!serial_summary.ok()) {
    std::fprintf(stderr, "FAIL: serial fleet: %s\n",
                 serial_summary.status().ToString().c_str());
    return 1;
  }

  SessionFleet parallel(MakeConfig(rounds, threads),
                        fixture->BuildSpecs(tenants));
  auto parallel_summary = parallel.RunToCompletion();
  if (!parallel_summary.ok()) {
    std::fprintf(stderr, "FAIL: parallel fleet: %s\n",
                 parallel_summary.status().ToString().c_str());
    return 1;
  }
  std::string diff = FirstDifference(*serial_summary, *parallel_summary);
  if (!diff.empty()) {
    std::fprintf(stderr, "FAIL: 1-thread vs %d-thread diverged at %s\n",
                 threads, diff.c_str());
    return 1;
  }
  std::printf("determinism: %zu tenants, 1 vs %d threads bit-identical "
              "(%d rounds)\n",
              tenants, threads, rounds);

  // Mid-stream checkpoint/restore, resumed at yet another thread count.
  SessionFleet first(MakeConfig(rounds, threads), fixture->BuildSpecs(tenants));
  if (!first.Bootstrap().ok()) return 1;
  const int cut = rounds / 2;
  for (int r = 0; r < cut; ++r) {
    if (!first.StepRound().ok()) return 1;
  }
  FleetCheckpoint checkpoint = first.Checkpoint();
  SessionFleet resumed(MakeConfig(rounds, 2), fixture->BuildSpecs(tenants));
  if (!resumed.Restore(checkpoint).ok()) {
    std::fprintf(stderr, "FAIL: fleet restore failed\n");
    return 1;
  }
  for (int r = cut; r < rounds; ++r) {
    if (!resumed.StepRound().ok()) return 1;
  }
  diff = FirstDifference(*serial_summary, resumed.Finish());
  if (!diff.empty()) {
    std::fprintf(stderr,
                 "FAIL: checkpoint/restore stream diverged at %s\n",
                 diff.c_str());
    return 1;
  }
  std::printf("determinism: checkpoint at round %d + restore "
              "bit-identical\n", cut);
  return 0;
}

struct Cell {
  double wall_ms = 0.0;
  double tenant_rounds_per_sec = 0.0;
  uint64_t allocations = 0;  ///< heap traffic of the timed region
};

// Times `rounds` StepRounds after a few un-timed warmup rounds (the warmup
// is where scratch buffers reach steady-state capacity — the fractional
// poison quota only hits its per-tenant maximum on the second round; at 1
// thread the timed region is then allocation-free, which the JSON records
// and the CI gate asserts).
Cell TimeFleet(FleetFixture* fixture, size_t tenants, int rounds,
               int threads) {
  const int warmup_rounds = 3;
  SessionFleet fleet(MakeConfig(rounds + warmup_rounds, threads),
                     fixture->BuildSpecs(tenants));
  Cell cell;
  if (!fleet.Bootstrap().ok()) return cell;
  for (int r = 0; r < warmup_rounds; ++r) {
    if (!fleet.StepRound().ok()) return cell;
  }
  bench::AllocCounts before = bench::ThreadAllocCounts();
  auto start = std::chrono::steady_clock::now();
  for (int r = 0; r < rounds; ++r) {
    if (!fleet.StepRound().ok()) return cell;
  }
  auto stop = std::chrono::steady_clock::now();
  cell.allocations =
      (bench::ThreadAllocCounts() - before).allocations;
  cell.wall_ms =
      std::chrono::duration<double, std::milli>(stop - start).count();
  cell.tenant_rounds_per_sec =
      static_cast<double>(tenants) * rounds / (cell.wall_ms / 1000.0);
  return cell;
}

}  // namespace
}  // namespace itrim

int main(int argc, char** argv) {
  using namespace itrim;
  const bench::BenchFlags flags = bench::ParseFlags(argc, argv);
  const bool smoke = flags.smoke;
  const int max_threads = flags.jobs > 0 ? flags.jobs : 4;
  const size_t tenants = static_cast<size_t>(
      bench::EnvInt("ITRIM_BENCH_TENANTS", 1000));
  const int rounds = bench::EnvInt("ITRIM_BENCH_ROUNDS", smoke ? 4 : 8);

  bench::BenchReporter reporter("fleet", flags);
  FleetFixture fixture;
  if (RunDeterminism(&fixture, tenants, rounds, max_threads) != 0) return 1;
  reporter.AddCase("determinism/1_vs_n_threads").Ok();
  reporter.AddCase("determinism/checkpoint_restore").Ok();

  // Per-thread-count case names are stable across machines so the gate and
  // the nightly trend can key on them; the 1-thread case is the
  // steady-state contract carrier (throughput + zero allocations).
  auto record_cell = [&](size_t n, int threads, const Cell& cell) {
    const uint64_t ops = static_cast<uint64_t>(n) *
                         static_cast<uint64_t>(rounds);
    reporter
        .AddCase("steprounds/" + std::to_string(n) + "t/" +
                 std::to_string(threads) + "thr")
        .Iterations(static_cast<uint64_t>(rounds))
        .Ops(ops)
        .WallMs(cell.wall_ms)
        .Allocations(cell.allocations)
        .Counter("tenants", static_cast<double>(n))
        .Counter("threads", static_cast<double>(threads))
        .Counter("tenant_rounds_per_sec", cell.tenant_rounds_per_sec);
  };

  if (smoke) {
    // Thread-local allocation counting only sees the calling thread, so
    // the zero-allocation claim is measured where it is defined: the
    // serial fast path.
    Cell serial = TimeFleet(&fixture, tenants, rounds, 1);
    record_cell(tenants, 1, serial);
    std::printf("smoke timing: %zu tenants x %d rounds, 1 thread: "
                "%.1f ms (%.0f tenant-rounds/s, %llu allocs)\n",
                tenants, rounds, serial.wall_ms,
                serial.tenant_rounds_per_sec,
                static_cast<unsigned long long>(serial.allocations));
    if (max_threads > 1) {
      Cell cell = TimeFleet(&fixture, tenants, rounds, max_threads);
      record_cell(tenants, max_threads, cell);
      std::printf("smoke timing: %zu tenants x %d rounds, %d threads: "
                  "%.1f ms (%.0f tenant-rounds/s)\n",
                  tenants, rounds, max_threads, cell.wall_ms,
                  cell.tenant_rounds_per_sec);
    }
    return reporter.WriteJson().ok() ? 0 : 1;
  }

  std::printf("\nscaling (wall ms for %d lockstep rounds; "
              "tenant-rounds/s in parens)\n", rounds);
  std::printf("%10s", "tenants");
  for (int t = 1; t <= max_threads; t *= 2) {
    std::printf("  %8d thr", t);
  }
  std::printf("\n");
  for (size_t n : {static_cast<size_t>(256), tenants, 4 * tenants}) {
    std::printf("%10zu", n);
    for (int t = 1; t <= max_threads; t *= 2) {
      Cell cell = TimeFleet(&fixture, n, rounds, t);
      record_cell(n, t, cell);
      std::printf("  %7.0fms (%.0fk/s)", cell.wall_ms,
                  cell.tenant_rounds_per_sec / 1000.0);
    }
    std::printf("\n");
  }
  return reporter.WriteJson().ok() ? 0 : 1;
}
