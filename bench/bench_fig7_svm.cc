// Fig 6a + Fig 7: SVM classification on Control (with labels), Tth = 0.95,
// attack ratio 0.4. The paper reports ground-truth accuracy 96.8% and scheme
// accuracies 95.5 / 95.1 / 94.9 / 96.1 / 95.6 / 95.7 (Ostrich, Baseline0.9,
// Baselinestatic, Titfortat, Elastic0.1, Elastic0.5): the baselines fall
// behind Ostrich and the proposed schemes lead.
#include <chrono>
#include <cstdio>
#include <iostream>

#include "bench/env.h"
#include "bench/flags.h"
#include "bench/reporter.h"
#include "common/table_printer.h"
#include "exp/experiments.h"

int main(int argc, char** argv) {
  using namespace itrim;
  const bench::BenchFlags flags = bench::ParseFlags(argc, argv);
  bench::BenchReporter reporter("fig7_svm", flags);
  SvmExperimentConfig config;
  config.repetitions = bench::EnvInt("ITRIM_BENCH_REPS", 3);
  config.threads = flags.jobs;
  PrintBanner(std::cout,
              "Fig 7: SVM accuracy, Control, Tth=0.95, attack ratio=0.4");
  auto run_start = std::chrono::steady_clock::now();
  auto result = RunSvmExperiment(config);
  const double run_ms = std::chrono::duration<double, std::milli>(
                            std::chrono::steady_clock::now() - run_start)
                            .count();
  if (!result.ok()) {
    std::cerr << "ERROR: " << result.status().ToString() << "\n";
    return 1;
  }
  for (const auto& s : result->schemes) {
    reporter.AddCase(s.scheme).Counter("accuracy", s.accuracy).Ok();
  }
  reporter.AddCase("experiment")
      .Iterations(static_cast<uint64_t>(config.repetitions))
      .Ops(static_cast<uint64_t>(result->schemes.size()) *
           static_cast<uint64_t>(config.repetitions))
      .WallMs(run_ms)
      .Counter("groundtruth_accuracy", result->groundtruth_accuracy);
  std::printf("groundtruth accuracy: %.1f%%  (paper: 96.8%%)\n",
              100.0 * result->groundtruth_accuracy);

  TablePrinter table({"scheme", "accuracy(%)", "paper(%)"});
  const char* paper[] = {"95.5", "95.1", "94.9", "96.1", "95.6", "95.7"};
  for (size_t i = 0; i < result->schemes.size(); ++i) {
    table.BeginRow();
    table.AddCell(result->schemes[i].scheme);
    table.AddNumber(100.0 * result->schemes[i].accuracy, 1);
    table.AddCell(i < 6 ? paper[i] : "-");
  }
  table.Print(std::cout);

  PrintBanner(std::cout, "per-class PPV (Fig 6a / Fig 7 confusion rows)");
  std::vector<std::string> headers = {"scheme"};
  for (size_t c = 0; c < result->groundtruth_ppv.size(); ++c) {
    headers.push_back("class" + std::to_string(c));
  }
  TablePrinter ppv(headers);
  ppv.BeginRow();
  ppv.AddCell("Groundtruth");
  for (double v : result->groundtruth_ppv) ppv.AddNumber(100.0 * v, 1);
  for (const auto& s : result->schemes) {
    ppv.BeginRow();
    ppv.AddCell(s.scheme);
    for (double v : s.class_ppv) ppv.AddNumber(100.0 * v, 1);
  }
  ppv.Print(std::cout);
  return reporter.WriteJson().ok() ? 0 : 1;
}
