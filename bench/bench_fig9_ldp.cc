// Fig 9: LDP mean-estimation MSE vs privacy budget epsilon, comparing
// Titfortat / Elastic0.1 / Elastic0.5 against the EMF baseline on the Taxi
// workload under the input manipulation attack, across nine attack ratios.
//
// Shape targets from the paper: EMF trails the trimming schemes everywhere;
// MSE grows with the attack ratio; small epsilon (heavy perturbation) shows
// an inflection near eps ~ 1.5 where trimming overhead from false positives
// kicks in, most visible at small attack ratios.
#include <chrono>
#include <cstdio>
#include <iostream>

#include "bench/env.h"
#include "bench/flags.h"
#include "bench/reporter.h"
#include "common/table_printer.h"
#include "exp/experiments.h"

int main(int argc, char** argv) {
  using namespace itrim;
  const bench::BenchFlags flags = bench::ParseFlags(argc, argv);
  bench::BenchReporter reporter("fig9_ldp", flags);
  const int reps = bench::EnvInt("ITRIM_BENCH_REPS", 3);
  const int jobs = flags.jobs;
  const std::vector<double> epsilons = {1.0, 1.5, 2.0, 2.5, 3.0,
                                        3.5, 4.0, 4.5, 5.0};
  const std::vector<double> ratios = {0.05, 0.1, 0.15, 0.2, 0.25,
                                      0.3,  0.35, 0.4, 0.45};
  for (double ratio : ratios) {
    auto cell_start = std::chrono::steady_clock::now();
    LdpExperimentConfig config;
    config.epsilons = epsilons;
    config.attack_ratio = ratio;
    config.repetitions = reps;
    config.threads = jobs;
    config.population_size = static_cast<size_t>(
        50000 * bench::EnvScale("ITRIM_BENCH_SCALE", 1.0));
    char title[96];
    std::snprintf(title, sizeof(title),
                  "Fig 9: MSE vs epsilon, attack ratio=%.2f (reps=%d)", ratio,
                  reps);
    PrintBanner(std::cout, title);
    auto result = RunLdpExperiment(config);
    if (!result.ok()) {
      std::cerr << "ERROR: " << result.status().ToString() << "\n";
      return 1;
    }
    std::vector<std::string> headers = {"scheme"};
    for (double eps : epsilons) {
      char buf[16];
      std::snprintf(buf, sizeof(buf), "eps=%.1f", eps);
      headers.push_back(buf);
    }
    TablePrinter table(headers);
    for (const auto& series : result->series) {
      table.BeginRow();
      table.AddCell(series.scheme);
      for (double mse : series.mse) table.AddNumber(mse, 5);
    }
    table.Print(std::cout);
    char case_name[32];
    std::snprintf(case_name, sizeof(case_name), "ratio=%.2f", ratio);
    const uint64_t arms = static_cast<uint64_t>(result->series.size()) *
                          epsilons.size() * static_cast<uint64_t>(reps);
    reporter.AddCase(case_name)
        .Iterations(static_cast<uint64_t>(reps))
        .Ops(arms)
        .WallMs(std::chrono::duration<double, std::milli>(
                    std::chrono::steady_clock::now() - cell_start)
                    .count());
  }
  return reporter.WriteJson().ok() ? 0 : 1;
}
