// Microbench: ParallelFor scaling on the experiment engine's real unit of
// work — one full collection game plus a k-means fit per arm, the same body
// the Fig 4/5 pipeline fans out. Prints wall-clock, speedup and parallel
// efficiency at 1, 2, 4, ... jobs up to the hardware (or --jobs) limit,
// plus a checksum proving the reduction is bit-identical at every width.
#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <iostream>
#include <vector>

#include "bench/env.h"
#include "bench/flags.h"
#include "bench/measure.h"
#include "bench/reporter.h"
#include "common/table_printer.h"
#include "common/thread_pool.h"
#include "data/generators.h"
#include "exp/schemes.h"
#include "game/collection_game.h"
#include "ml/kmeans.h"

int main(int argc, char** argv) {
  using namespace itrim;
  const bench::BenchFlags flags = bench::ParseFlags(argc, argv);
  bench::BenchReporter reporter("micro_parallel", flags);
  // Clamp both knobs: a negative ITRIM_BENCH_ARMS must not wrap through
  // size_t into a gigantic allocation, and a huge --jobs must not overflow
  // the 4*max_jobs default or the doubling widths loop.
  const int max_jobs_arg = flags.jobs;
  const int max_jobs = std::clamp(
      max_jobs_arg > 0 ? max_jobs_arg : DefaultNumThreads(), 1, 4096);
  const int arms =
      std::max(1, bench::EnvInt("ITRIM_BENCH_ARMS", 4 * max_jobs));

  Dataset data = MakeControl(2024);
  KMeansConfig km;
  km.k = data.num_clusters;
  km.restarts = 3;
  km.seed = 99;

  // One experiment arm: an Elastic-vs-adversary game on fresh per-arm seeds
  // followed by a k-means fit of the survivors — the hot loop of
  // RunKmeansExperiment.
  auto run_arm = [&](size_t arm) {
    SchemeOptions opts;
    opts.seed = 1000 + static_cast<uint64_t>(arm) * 7919;
    SchemeInstance scheme = MakeScheme(SchemeId::kElastic05, 0.9, opts);
    GameConfig config;
    config.rounds = 12;
    config.round_size = 200;
    config.attack_ratio = 0.3;
    config.tth = 0.9;
    config.bootstrap_size = 200;
    config.round_mass_trimming = true;
    config.seed = 42 + static_cast<uint64_t>(arm) * 104729;
    DistanceCollectionGame game(config, &data, scheme.collector.get(),
                                scheme.adversary.get(), scheme.quality.get());
    if (!game.Run().ok()) return 0.0;
    KMeansConfig km_run = km;
    km_run.seed = km.seed + static_cast<uint64_t>(arm) * 13;
    auto model = KMeans(game.retained_data().rows, km_run);
    if (!model.ok()) return 0.0;
    return EvaluateSse(data.rows, model->centroids);
  };

  PrintBanner(std::cout, "ParallelFor scaling: " + std::to_string(arms) +
                             " game+kmeans arms (ITRIM_BENCH_ARMS to resize)");
  TablePrinter table({"jobs", "wall(ms)", "speedup", "efficiency", "checksum"});
  std::vector<int> widths;
  for (int j = 1; j < max_jobs; j *= 2) widths.push_back(j);
  widths.push_back(max_jobs);
  double base_ms = 0.0;
  double base_checksum = 0.0;
  bool deterministic = true;
  // Shared measurement discipline (src/bench/measure.h): each width can be
  // deepened to best-of-N via ITRIM_BENCH_REPETITIONS without a rebuild;
  // the default single pass keeps the smoke shape as cheap as before.
  bench::MeasureOptions measure_opts;
  measure_opts.warmup_iters = 0;
  measure_opts.min_iters = 1;
  measure_opts.min_time_ms = 0.0;
  measure_opts.repetitions = bench::EnvInt("ITRIM_BENCH_REPETITIONS", 1);
  for (int jobs : widths) {
    std::vector<double> sse(static_cast<size_t>(arms), 0.0);
    bench::Measurement m = bench::MeasureLoop(measure_opts, [&] {
      ParallelFor(
          sse.size(), [&](size_t arm) { sse[arm] = run_arm(arm); }, jobs);
    });
    double ms = m.wall_ms / static_cast<double>(m.iterations);
    // Ordered reduction, exactly like the experiment runners.
    double checksum = 0.0;
    for (double s : sse) checksum += s;
    if (jobs == 1) {
      base_ms = ms;
      base_checksum = checksum;
    } else if (checksum != base_checksum) {
      deterministic = false;
    }
    table.BeginRow();
    table.AddNumber(jobs, 0);
    table.AddNumber(ms, 1);
    table.AddNumber(base_ms > 0.0 ? base_ms / ms : 1.0, 2);
    table.AddNumber(base_ms > 0.0 ? base_ms / ms / jobs : 1.0, 2);
    table.AddNumber(checksum, 3);
    reporter.AddCase("arms/" + std::to_string(jobs) + "jobs")
        .Iterations(static_cast<uint64_t>(arms))
        .Ops(static_cast<uint64_t>(arms))
        .WallMs(ms)
        .Counter("speedup_vs_1thr", base_ms > 0.0 ? base_ms / ms : 1.0);
  }
  table.Print(std::cout);
  if (!deterministic) {
    std::cerr << "ERROR: checksum varied with thread count — the ordered "
                 "reduction contract is broken\n";
    return 1;
  }
  reporter.AddCase("determinism/checksum_all_widths").Ok();
  std::cout << "\nchecksums identical at every width: the fan-out is "
               "bit-deterministic; only wall-clock changes with --jobs.\n";
  return reporter.WriteJson().ok() ? 0 : 1;
}
