// Shared driver for the Fig 4 / Fig 5 k-means benches (they differ only in
// the nominal threshold Tth).
#ifndef ITRIM_BENCH_BENCH_FIG_KMEANS_COMMON_H_
#define ITRIM_BENCH_BENCH_FIG_KMEANS_COMMON_H_

#include <chrono>
#include <iostream>
#include <string>
#include <vector>

#include "bench/env.h"
#include "bench/flags.h"
#include "bench/reporter.h"
#include "common/table_printer.h"
#include "exp/experiments.h"

namespace itrim::bench {

/// \brief Runs the three dataset panels x three attack-ratio bands of
/// Fig 4/5 at the given threshold and prints one table per panel, writing
/// one BENCH_<report_name>.json case per (panel, band) cell. `jobs` fans
/// the (scheme, ratio, repetition) arms across threads (0 = default).
inline int RunKmeansFigure(const std::string& figure,
                           const std::string& report_name, double tth,
                           const BenchFlags& flags) {
  const int jobs = flags.jobs;
  BenchReporter reporter(report_name, flags);
  const int reps = EnvInt("ITRIM_BENCH_REPS", 3);
  const struct Band {
    const char* name;
    std::vector<double> ratios;
  } bands[] = {
      {"[0,0.01]", {0.0, 0.002, 0.004, 0.006, 0.008, 0.01}},
      {"[0.05,0.15]", {0.05, 0.07, 0.09, 0.11, 0.13, 0.15}},
      {"[0.2,0.5]", {0.2, 0.26, 0.32, 0.38, 0.44, 0.5}},
  };
  const struct Panel {
    const char* dataset;
    double scale;
  } panels[] = {
      {"control", 1.0},
      {"vehicle", 1.0},
      {"letter", EnvScale("ITRIM_BENCH_LETTER_SCALE", 0.15)},
  };

  std::cout << figure << ": k-means clustering under poisoning, Tth=" << tth
            << " (reps=" << reps << ", set ITRIM_BENCH_REPS=100 for the "
            << "paper's averaging)\n";
  for (const auto& panel : panels) {
    for (const auto& band : bands) {
      auto cell_start = std::chrono::steady_clock::now();
      KmeansExperimentConfig config;
      config.dataset = panel.dataset;
      config.dataset_scale = panel.scale;
      config.tth = tth;
      config.attack_ratios = band.ratios;
      config.repetitions = reps;
      config.seed = 2024;
      config.threads = jobs;
      auto result = RunKmeansExperiment(config);
      if (!result.ok()) {
        std::cerr << "ERROR: " << result.status().ToString() << "\n";
        return 1;
      }
      PrintBanner(std::cout, std::string(panel.dataset) + band.name +
                                 "  (groundtruth SSE=" +
                                 std::to_string(result->groundtruth_sse) +
                                 ")");
      std::vector<std::string> headers = {"scheme", "metric"};
      for (double r : band.ratios) {
        char buf[16];
        std::snprintf(buf, sizeof(buf), "%.3f", r);
        headers.push_back(buf);
      }
      TablePrinter table(headers);
      for (const auto& series : result->series) {
        table.BeginRow();
        table.AddCell(series.scheme);
        table.AddCell("SSE");
        for (const auto& p : series.points) table.AddNumber(p.sse, 1);
        table.BeginRow();
        table.AddCell(series.scheme);
        table.AddCell("Distance");
        for (const auto& p : series.points) table.AddNumber(p.distance, 3);
      }
      table.Print(std::cout);
      // One experiment arm = (scheme, ratio, repetition); the cell fanned
      // result->series.size() schemes over the band's ratios x reps.
      const uint64_t arms = static_cast<uint64_t>(result->series.size()) *
                            band.ratios.size() *
                            static_cast<uint64_t>(reps);
      reporter.AddCase(std::string(panel.dataset) + band.name)
          .Iterations(1)
          .Ops(arms)
          .WallMs(std::chrono::duration<double, std::milli>(
                      std::chrono::steady_clock::now() - cell_start)
                      .count())
          .Counter("groundtruth_sse", result->groundtruth_sse);
    }
  }
  return reporter.WriteJson().ok() ? 0 : 1;
}

}  // namespace itrim::bench

#endif  // ITRIM_BENCH_BENCH_FIG_KMEANS_COMMON_H_
