// Table I: the payoff matrix of the ultimatum game and its equilibrium
// structure, P-bar > T-bar >> P > T > 0.
//
// Prints the payoff matrix, verifies the unique tough/tough equilibrium and
// the prisoner's-dilemma structure, and reports the Theorem-3 compliance
// boundary that the repeated game uses to escape it.
#include <cstdio>
#include <iostream>

#include "bench/flags.h"
#include "bench/reporter.h"
#include "common/table_printer.h"
#include "game/equilibrium.h"
#include "game/payoff.h"

int main(int argc, char** argv) {
  using namespace itrim;
  bench::BenchReporter reporter("table1_ultimatum",
                                bench::ParseFlags(argc, argv));
  PayoffParams params;  // P-bar=10, T-bar=6, P=1, T=0.5
  UltimatumGame game(params);

  PrintBanner(std::cout, "Table I: payoff matrix of the ultimatum game");
  std::printf("parameters: P-bar=%.1f  T-bar=%.1f  P=%.1f  T=%.1f  (%s)\n",
              params.p_hard, params.t_hard, params.p_soft, params.t_soft,
              params.Validate().ok() ? "ordering OK" : "ORDERING VIOLATED");

  TablePrinter table({"Collector \\ Adversary", "Soft", "Hard"});
  auto cell = [&](Stance c, Stance a) {
    PayoffPair p = game.Payoff(c, a);
    char buf[64];
    std::snprintf(buf, sizeof(buf), "(%.1f, %.1f)", p.collector, p.adversary);
    return std::string(buf);
  };
  table.AddRow({"Soft", cell(Stance::kSoft, Stance::kSoft),
                cell(Stance::kSoft, Stance::kHard)});
  table.AddRow({"Hard", cell(Stance::kHard, Stance::kSoft),
                cell(Stance::kHard, Stance::kHard)});
  table.Print(std::cout);

  std::cout << "\npure Nash equilibria:";
  for (auto& [c, a] : game.PureNashEquilibria()) {
    std::cout << " (collector=" << StanceName(c)
              << ", adversary=" << StanceName(a) << ")";
  }
  std::cout << "\nprisoner's-dilemma structure: "
            << (game.HasPrisonersDilemmaStructure() ? "yes" : "NO")
            << "\ncooperation gains: g_c=" << game.CollectorCooperationGain()
            << "  g_a=" << game.AdversaryCooperationGain()
            << "  g_ac=" << game.SymmetricCooperationGain() << "\n";

  PrintBanner(std::cout,
              "Theorem 3: compliance boundary delta* = (d-dp)/(1-dp) g_ac");
  TablePrinter boundary({"d", "p", "delta*", "complies at delta=0.1?"});
  for (double d : {0.8, 0.9, 0.95}) {
    for (double p : {0.0, 0.5, 0.9, 1.0}) {
      double b = TitfortatCompromiseBoundary(game, d, p);
      boundary.BeginRow();
      boundary.AddNumber(d, 2);
      boundary.AddNumber(p, 2);
      boundary.AddNumber(b, 4);
      ComplianceSetting s{game.SymmetricCooperationGain(), 0.1, d, p};
      boundary.AddCell(AdversaryComplies(s) ? "yes" : "no");
    }
  }
  boundary.Print(std::cout);
  reporter.AddCase("payoff_matrix")
      .Counter("ordering_ok", params.Validate().ok() ? 1.0 : 0.0)
      .Counter("prisoners_dilemma",
               game.HasPrisonersDilemmaStructure() ? 1.0 : 0.0)
      .Counter("g_ac", game.SymmetricCooperationGain())
      .Ok();
  return reporter.WriteJson().ok() ? 0 : 1;
}
