// Shared helpers for the table/figure bench binaries.
#ifndef ITRIM_BENCH_BENCH_UTIL_H_
#define ITRIM_BENCH_BENCH_UTIL_H_

#include <cstdlib>
#include <cstring>
#include <string>

namespace itrim::bench {

/// \brief Integer knob from the environment with a default (e.g. repetition
/// counts: ITRIM_BENCH_REPS=100 reproduces the paper's averaging).
inline int EnvInt(const char* name, int fallback) {
  const char* value = std::getenv(name);
  if (value == nullptr || *value == '\0') return fallback;
  return std::atoi(value);
}

/// \brief Scale knob in (0, 1] from the environment.
inline double EnvScale(const char* name, double fallback) {
  const char* value = std::getenv(name);
  if (value == nullptr || *value == '\0') return fallback;
  double v = std::atof(value);
  return v > 0.0 && v <= 1.0 ? v : fallback;
}

/// \brief Parallel-jobs knob shared by every bench: `--jobs=N` / `--jobs N`
/// on the command line wins, then the ITRIM_THREADS environment variable,
/// then the hardware concurrency. The returned value feeds the `threads`
/// field of the experiment configs; results are bit-identical at any
/// setting (see common/thread_pool.h), only wall-clock changes.
inline int Jobs(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strncmp(arg, "--jobs=", 7) == 0) {
      int n = std::atoi(arg + 7);
      if (n > 0) return n;
    } else if (std::strcmp(arg, "--jobs") == 0 && i + 1 < argc) {
      int n = std::atoi(argv[i + 1]);
      if (n > 0) return n;
    }
  }
  // 0 lets the library resolve ITRIM_THREADS / hardware concurrency.
  return 0;
}

}  // namespace itrim::bench

#endif  // ITRIM_BENCH_BENCH_UTIL_H_
