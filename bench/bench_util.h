// Shared helpers for the table/figure bench binaries.
#ifndef ITRIM_BENCH_BENCH_UTIL_H_
#define ITRIM_BENCH_BENCH_UTIL_H_

#include <cstdlib>
#include <string>

namespace itrim::bench {

/// \brief Integer knob from the environment with a default (e.g. repetition
/// counts: ITRIM_BENCH_REPS=100 reproduces the paper's averaging).
inline int EnvInt(const char* name, int fallback) {
  const char* value = std::getenv(name);
  if (value == nullptr || *value == '\0') return fallback;
  return std::atoi(value);
}

/// \brief Scale knob in (0, 1] from the environment.
inline double EnvScale(const char* name, double fallback) {
  const char* value = std::getenv(name);
  if (value == nullptr || *value == '\0') return fallback;
  double v = std::atof(value);
  return v > 0.0 && v <= 1.0 ? v : fallback;
}

}  // namespace itrim::bench

#endif  // ITRIM_BENCH_BENCH_UTIL_H_
