// Arrival-driven ingestion benchmark and determinism gate.
//
// Two phases:
//
//   1. Determinism gate (both modes): drives a heterogeneous tenant mix
//      through IngestService at several shard counts — including a
//      configuration whose resident-set bound forces hibernation churn on
//      every burst — and asserts every tenant's round records are
//      bit-identical to stepping that tenant alone.
//   2. Sustained-throughput measurement: a round-robin arrival schedule
//      (two events per tenant round) pushed through the sharded queues
//      with the resident set bounded to a quarter of the fleet, reporting
//      reports/s, Submit-latency percentiles (p50/p90/p99), producer-side
//      heap allocations of the timed region, and the hibernation
//      counters. The full (non-smoke) mode enforces the 200k reports/s
//      acceptance floor in-binary; the CI perf gate holds the same case
//      against bench/baselines/BENCH_ingest.json.
//
// `--smoke` shrinks both phases and is registered with ctest as
// bench/bench_ingest_smoke. Knobs: ITRIM_BENCH_TENANTS,
// ITRIM_BENCH_ROUNDS, --jobs N (shard count).
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "bench/alloc_counter.h"
#include "bench/env.h"
#include "bench/flags.h"
#include "bench/reporter.h"
#include "common/rng.h"
#include "data/generators.h"
#include "exp/schemes.h"
#include "fleet/session_fleet.h"
#include "ingest/ingest.h"
#include "ldp/attacks.h"
#include "ldp/mechanism.h"
#include "stats/quantile.h"

namespace itrim {
namespace {

bool BitEqual(double a, double b) {
  return std::memcmp(&a, &b, sizeof(double)) == 0;
}

// Shared read-only data sources plus per-tenant LDP attack instances
// (attacks are not promised stateless; every LDP tenant gets its own).
struct IngestFixture {
  std::vector<double> pool;
  Dataset data;
  std::vector<double> population;
  PiecewiseMechanism mechanism{2.0};
  std::vector<std::unique_ptr<LdpAttack>> attacks;

  IngestFixture() {
    Rng rng(71);
    pool.reserve(4000);
    for (int i = 0; i < 4000; ++i) pool.push_back(rng.Uniform());
    data = MakeControl(29, 60);
    population.reserve(3000);
    for (int i = 0; i < 3000; ++i) population.push_back(rng.Uniform(-1.0, 1.0));
  }

  std::vector<TenantSpec> BuildSpecs(size_t tenants) {
    const std::vector<SchemeId> schemes = AllSchemes();
    std::vector<TenantSpec> specs;
    specs.reserve(tenants);
    for (size_t i = 0; i < tenants; ++i) {
      TenantSpec spec;
      spec.name = "t" + std::to_string(i);
      spec.model = static_cast<TenantModelKind>(i % 3);
      spec.scheme = schemes[i % schemes.size()];
      spec.game.round_size = 30;
      spec.game.bootstrap_size = 40;
      spec.game.board_capacity = 512;
      spec.game.attack_ratio = 0.10 + 0.05 * static_cast<double>(i % 3);
      spec.game.round_mass_trimming = (i % 2) == 0;
      switch (spec.model) {
        case TenantModelKind::kScalar:
          spec.scalar_pool = &pool;
          break;
        case TenantModelKind::kDistance:
          spec.dataset = &data;
          break;
        case TenantModelKind::kLdp:
          spec.ldp_population = &population;
          spec.ldp_mechanism = &mechanism;
          attacks.push_back(std::make_unique<InputManipulationAttack>(1.0));
          spec.ldp_attack = attacks.back().get();
          break;
      }
      specs.push_back(spec);
    }
    return specs;
  }

  SessionFleet MakeFleet(size_t tenants) {
    FleetConfig config;
    config.threads = 1;
    config.seed = 4242;
    return SessionFleet(config, BuildSpecs(tenants));
  }
};

// First bitwise difference between two per-tenant record books, or "".
std::string FirstDifference(const std::vector<std::vector<RoundRecord>>& a,
                            const std::vector<std::vector<RoundRecord>>& b) {
  if (a.size() != b.size()) return "tenant count";
  for (size_t i = 0; i < a.size(); ++i) {
    if (a[i].size() != b[i].size()) {
      return "tenant " + std::to_string(i) + " round count (" +
             std::to_string(a[i].size()) + " vs " +
             std::to_string(b[i].size()) + ")";
    }
    for (size_t r = 0; r < a[i].size(); ++r) {
      const RoundRecord& ra = a[i][r];
      const RoundRecord& rb = b[i][r];
      if (ra.round != rb.round ||
          !BitEqual(ra.collector_percentile, rb.collector_percentile) ||
          !BitEqual(ra.injection_percentile, rb.injection_percentile) ||
          !BitEqual(ra.cutoff, rb.cutoff) ||
          !BitEqual(ra.quality, rb.quality) ||
          ra.benign_received != rb.benign_received ||
          ra.poison_received != rb.poison_received ||
          ra.benign_kept != rb.benign_kept ||
          ra.poison_kept != rb.poison_kept) {
        return "tenant " + std::to_string(i) + " round " + std::to_string(r);
      }
    }
  }
  return "";
}

// Reference books: every tenant stepped alone, `rounds` times.
std::vector<std::vector<RoundRecord>> SoloReplay(IngestFixture* fixture,
                                                 size_t tenants, int rounds) {
  SessionFleet fleet = fixture->MakeFleet(tenants);
  std::vector<std::vector<RoundRecord>> books(tenants);
  if (!fleet.Bootstrap().ok() || !fleet.BeginPerTenantStepping().ok()) {
    return books;
  }
  for (size_t i = 0; i < tenants; ++i) {
    for (int r = 0; r < rounds; ++r) {
      if (!fleet.StepTenant(i).ok()) return books;
    }
    books[i] = fleet.TenantRounds(i).ValueOrDie();
  }
  return books;
}

// Phase 1: sharded + hibernating ingestion vs the solo replay.
int RunDeterminism(IngestFixture* fixture, size_t tenants, int rounds) {
  const std::vector<std::vector<RoundRecord>> expected =
      SoloReplay(fixture, tenants, rounds);

  struct Variant {
    int shards;
    size_t max_resident_per_shard;  // 0 = unbounded
    const char* label;
  };
  const Variant variants[] = {
      {1, 0, "1 shard"},
      {2, 0, "2 shards"},
      {2, 2, "2 shards, resident<=2 (hibernation churn)"},
  };
  for (const Variant& variant : variants) {
    SessionFleet fleet = fixture->MakeFleet(tenants);
    if (!fleet.Bootstrap().ok()) return 1;
    IngestConfig config;
    config.shards = variant.shards;
    config.batch_max = 32;
    config.max_resident_per_shard = variant.max_resident_per_shard;
    IngestService service(config, &fleet);
    if (!service.Start().ok()) return 1;
    // Round-robin bursts: one tenant round per pass, split in two events.
    std::vector<TenantSpec> specs = fixture->BuildSpecs(tenants);
    for (int r = 0; r < rounds; ++r) {
      for (size_t i = 0; i < tenants; ++i) {
        const uint32_t burst =
            static_cast<uint32_t>(specs[i].game.round_size);
        if (!service.Submit({i, burst / 2}).ok()) return 1;
        if (!service.Submit({i, burst - burst / 2}).ok()) return 1;
      }
    }
    if (!service.Flush().ok()) return 1;
    std::vector<std::vector<RoundRecord>> actual(tenants);
    for (size_t i = 0; i < tenants; ++i) {
      auto records = fleet.TenantRounds(i);
      if (!records.ok()) return 1;
      actual[i] = std::move(records).ValueOrDie();
    }
    const IngestStats stats = service.Stats();
    const size_t resident_after = fleet.ResidentTenants();
    if (!service.Stop().ok()) return 1;
    std::string diff = FirstDifference(expected, actual);
    if (!diff.empty()) {
      std::fprintf(stderr, "FAIL: ingest (%s) diverged from solo replay "
                   "at %s\n", variant.label, diff.c_str());
      return 1;
    }
    // Hibernation must have engaged under the resident cap. The counter
    // lives on the obs slots (zero under ITRIM_OBS=0), so an OFF build
    // falls back to the behavioral fact: tenants were parked.
    const bool hibernated =
        obs::kEnabled ? stats.hibernations > 0 : resident_after < tenants;
    if (variant.max_resident_per_shard > 0 && !hibernated) {
      std::fprintf(stderr, "FAIL: resident bound %zu never hibernated\n",
                   variant.max_resident_per_shard);
      return 1;
    }
    std::printf("determinism: %s bit-identical to solo replay "
                "(%zu tenants x %d rounds, %llu hibernations)\n",
                variant.label, tenants, rounds,
                static_cast<unsigned long long>(stats.hibernations));
  }
  return 0;
}

struct SustainedResult {
  double wall_ms = 0.0;
  double reports_per_sec = 0.0;
  double submit_p50_us = 0.0;
  double submit_p90_us = 0.0;
  double submit_p99_us = 0.0;
  uint64_t reports = 0;
  uint64_t producer_allocations = 0;
  IngestStats stats;
  size_t fleet_resident = 0;  ///< fleet's own residency (obs-independent)
  bool ok = false;
};

// Phase 2: sustained ingestion with the resident set bounded to a quarter
// of the fleet — hibernation stays active for the whole measurement.
SustainedResult RunSustained(IngestFixture* fixture, size_t tenants,
                             int rounds, int shards) {
  SustainedResult result;
  SessionFleet fleet = fixture->MakeFleet(tenants);
  if (!fleet.Bootstrap().ok()) return result;
  IngestConfig config;
  config.shards = shards;
  config.queue_capacity = 4096;
  config.batch_max = 256;
  config.max_resident_per_shard =
      std::max<size_t>(1, tenants / static_cast<size_t>(shards) / 4);
  IngestService service(config, &fleet);
  if (!service.Start().ok()) return result;

  std::vector<TenantSpec> specs = fixture->BuildSpecs(tenants);
  // Warmup pass (un-timed): lane maps, queue rings and session scratch
  // reach steady state; the timed region then measures the sustained
  // shape, not first-touch setup.
  for (size_t i = 0; i < tenants; ++i) {
    const uint32_t burst = static_cast<uint32_t>(specs[i].game.round_size);
    if (!service.Submit({i, burst}).ok()) return result;
  }
  if (!service.Flush().ok()) return result;

  // Submit latencies are sampled (1 in 32) into a pre-sized buffer so the
  // sampling itself never allocates inside the timed region.
  const uint64_t total_events = 2ull * static_cast<uint64_t>(tenants) *
                                static_cast<uint64_t>(rounds);
  std::vector<double> latencies_us;
  latencies_us.reserve(static_cast<size_t>(total_events / 32 + 2));

  uint64_t reports = 0;
  uint64_t event_index = 0;
  bench::AllocCounts before = bench::ThreadAllocCounts();
  const auto start = std::chrono::steady_clock::now();
  for (int r = 0; r < rounds; ++r) {
    for (size_t i = 0; i < tenants; ++i) {
      const uint32_t burst =
          static_cast<uint32_t>(specs[i].game.round_size);
      const uint32_t halves[2] = {burst / 2, burst - burst / 2};
      for (uint32_t half : halves) {
        if (event_index++ % 32 == 0) {
          const auto t0 = std::chrono::steady_clock::now();
          if (!service.Submit({i, half}).ok()) return result;
          const auto t1 = std::chrono::steady_clock::now();
          latencies_us.push_back(
              std::chrono::duration<double, std::micro>(t1 - t0).count());
        } else if (!service.Submit({i, half}).ok()) {
          return result;
        }
        reports += half;
      }
    }
  }
  if (!service.Flush().ok()) return result;
  const auto stop = std::chrono::steady_clock::now();
  result.producer_allocations =
      (bench::ThreadAllocCounts() - before).allocations;

  result.wall_ms =
      std::chrono::duration<double, std::milli>(stop - start).count();
  result.reports = reports;
  result.reports_per_sec =
      static_cast<double>(reports) / (result.wall_ms / 1000.0);
  result.submit_p50_us = Quantile(latencies_us, 0.5);
  result.submit_p90_us = Quantile(latencies_us, 0.9);
  result.submit_p99_us = Quantile(latencies_us, 0.99);
  result.stats = service.Stats();
  result.fleet_resident = fleet.ResidentTenants();
  result.ok = service.Stop().ok();
  return result;
}

}  // namespace
}  // namespace itrim

int main(int argc, char** argv) {
  using namespace itrim;
  const bench::BenchFlags flags = bench::ParseFlags(argc, argv);
  const bool smoke = flags.smoke;
  const int shards = flags.jobs > 0 ? flags.jobs : 2;
  const size_t tenants = static_cast<size_t>(
      bench::EnvInt("ITRIM_BENCH_TENANTS", smoke ? 200 : 1000));
  const int rounds = bench::EnvInt("ITRIM_BENCH_ROUNDS", smoke ? 3 : 8);

  bench::BenchReporter reporter("ingest", flags);
  IngestFixture fixture;

  const size_t determinism_tenants = smoke ? 24 : 60;
  if (RunDeterminism(&fixture, determinism_tenants, smoke ? 3 : 4) != 0) {
    return 1;
  }
  reporter.AddCase("determinism/sharded_vs_solo").Ok();
  reporter.AddCase("determinism/hibernation_churn").Ok();

  SustainedResult sustained =
      RunSustained(&fixture, tenants, rounds, shards);
  if (!sustained.ok) {
    std::fprintf(stderr, "FAIL: sustained ingestion run failed\n");
    return 1;
  }
  reporter.AddCase("sustained/throughput")
      .Iterations(static_cast<uint64_t>(rounds))
      .Ops(sustained.reports)
      .WallMs(sustained.wall_ms)
      .Allocations(sustained.producer_allocations)
      .Counter("tenants", static_cast<double>(tenants))
      .Counter("shards", static_cast<double>(shards))
      .Counter("reports_per_sec", sustained.reports_per_sec)
      .Counter("submit_p50_us", sustained.submit_p50_us)
      .Counter("submit_p90_us", sustained.submit_p90_us)
      .Counter("submit_p99_us", sustained.submit_p99_us)
      .Counter("rounds_played",
               static_cast<double>(sustained.stats.rounds_played))
      .Counter("hibernations",
               static_cast<double>(sustained.stats.hibernations))
      .Counter("rehydrations",
               static_cast<double>(sustained.stats.rehydrations))
      .Counter("resident_tenants",
               static_cast<double>(sustained.stats.resident_tenants));

  std::printf(
      "sustained: %zu tenants x %d rounds, %d shards: %.1f ms — "
      "%.0fk reports/s, submit p50/p90/p99 %.2f/%.2f/%.2f us, "
      "%llu producer allocs, %llu hibernations, %zu resident\n",
      tenants, rounds, shards, sustained.wall_ms,
      sustained.reports_per_sec / 1000.0, sustained.submit_p50_us,
      sustained.submit_p90_us, sustained.submit_p99_us,
      static_cast<unsigned long long>(sustained.producer_allocations),
      static_cast<unsigned long long>(sustained.stats.hibernations),
      sustained.stats.resident_tenants);
  // Counter under obs; behavioral residency fallback for an ITRIM_OBS=0
  // build (a quarter-capped resident set proves hibernation engaged).
  const bool hibernated = obs::kEnabled ? sustained.stats.hibernations > 0
                                        : sustained.fleet_resident < tenants;
  if (!hibernated) {
    std::fprintf(stderr, "FAIL: hibernation never engaged during the "
                 "sustained measurement\n");
    return 1;
  }

  // The acceptance floor runs only in the full mode: smoke runs on
  // saturated CI boxes where absolute throughput is not meaningful (the
  // perf gate still holds the smoke case against its own baseline).
  if (!smoke && sustained.reports_per_sec < 200000.0) {
    std::fprintf(stderr,
                 "FAIL: sustained throughput %.0f reports/s below the "
                 "200k floor\n", sustained.reports_per_sec);
    return 1;
  }
  return reporter.WriteJson().ok() ? 0 : 1;
}
