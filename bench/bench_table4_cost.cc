// Table IV: roundwise cost of Elastic 0.1 and Elastic 0.5.
//
// Cost = mean deviation of the adversary's injection position from its
// equilibrium A* over the first Round_no rounds of the coupled Elastic
// recurrences (Section VI-A). The cumulative deviation converges, so the
// roundwise cost decays as 1/Round_no, the paper's pattern.
//
// Reproduction note (also in DESIGN.md/EXPERIMENTS.md): the paper's printed
// columns equal |A*(k)|/Round_no with the k=0.1 and k=0.5 labels exchanged
// relative to the update equations in the text — the exact recurrence
// converges at rate k^2, so k=0.1 settles *faster* and accumulates *less*
// deviation, the opposite of the prose. We report the cost computed honestly
// from the stated recurrence next to the paper's printed values.
#include <iostream>

#include "bench/flags.h"
#include "bench/reporter.h"
#include "common/table_printer.h"
#include "exp/experiments.h"

int main(int argc, char** argv) {
  using namespace itrim;
  bench::BenchReporter reporter("table4_cost",
                                bench::ParseFlags(argc, argv));
  PrintBanner(std::cout, "Table IV: roundwise cost of the Elastic scheme");
  for (double k : {0.1, 0.5}) {
    ElasticTrace trace = TraceElasticDynamics(k, 5);
    std::cout << "k=" << k
              << ": equilibrium A* - Tth = " << trace.fixed_point_adversary
              << ", T* - Tth = " << trace.fixed_point_collector << "\n";
  }
  TablePrinter table({"Round_no", "k=0.5 (%)", "k=0.1 (%)",
                      "paper k=0.5 (%)", "paper k=0.1 (%)"});
  const char* paper_k05[] = {"0.608",    "0.30404",  "0.20269", "0.15202",
                             "0.12162",  "0.10135",  "0.086869", "0.07601",
                             "0.067565", "0.060808"};
  const char* paper_k01[] = {"0.8",      "0.43281", "0.28887",  "0.21667",
                             "0.17333",  "0.14444", "0.12381",  "0.10833",
                             "0.096296", "0.086667"};
  int idx = 0;
  for (int n = 5; n <= 50; n += 5, ++idx) {
    table.BeginRow();
    table.AddInt(n);
    table.AddNumber(100.0 * ElasticRoundwiseCost(0.5, n), 5);
    table.AddNumber(100.0 * ElasticRoundwiseCost(0.1, n), 5);
    table.AddCell(paper_k05[idx]);
    table.AddCell(paper_k01[idx]);
  }
  table.Print(std::cout);
  std::cout << "\nshape checks: cost ~ 1/Round_no for both k; cumulative "
               "cost converges to a constant per k.\n";
  reporter.AddCase("roundwise_cost")
      .Counter("cost_k05_at_20", ElasticRoundwiseCost(0.5, 20))
      .Counter("cost_k01_at_20", ElasticRoundwiseCost(0.1, 20))
      .Ok();
  return reporter.WriteJson().ok() ? 0 : 1;
}
