// Fig 6b + Fig 8: SOM classification on Creditcard-like data (20x20 map,
// Tth = 0.95, attack ratio 0.4). The paper reads the result qualitatively:
// Ostrich loses the green segment under poison mass, Baseline0.9 also loses
// the isolated points, Baselinestatic over-represents poison, while
// Titfortat/Elastic preserve the green class at the cost of an isolated
// point. We print the class-structure metrics that encode those readings.
#include <chrono>
#include <iostream>

#include "bench/env.h"
#include "bench/flags.h"
#include "bench/reporter.h"
#include "common/table_printer.h"
#include "exp/experiments.h"

int main(int argc, char** argv) {
  using namespace itrim;
  const bench::BenchFlags flags = bench::ParseFlags(argc, argv);
  bench::BenchReporter reporter("fig8_som", flags);
  SomExperimentConfig config;
  config.dataset_size =
      static_cast<size_t>(4000 * bench::EnvScale("ITRIM_BENCH_SCALE", 1.0));
  config.threads = flags.jobs;
  PrintBanner(std::cout,
              "Fig 8: SOM structure preservation, Creditcard, Tth=0.95, "
              "attack ratio=0.4");
  auto run_start = std::chrono::steady_clock::now();
  auto result = RunSomExperiment(config);
  const double run_ms = std::chrono::duration<double, std::milli>(
                            std::chrono::steady_clock::now() - run_start)
                            .count();
  if (!result.ok()) {
    std::cerr << "ERROR: " << result.status().ToString() << "\n";
    return 1;
  }
  for (const auto& s : result->schemes) {
    reporter.AddCase(s.scheme)
        .Counter("classes_represented", s.classes_represented)
        .Counter("quantization_error", s.quantization_error)
        .Ok();
  }
  reporter.AddCase("experiment")
      .Iterations(1)
      .Ops(result->schemes.size())
      .WallMs(run_ms)
      .Counter("dataset_size", static_cast<double>(config.dataset_size));
  std::cout << "groundtruth: classes represented="
            << result->groundtruth_classes
            << "/4, quantization error=" << result->groundtruth_qe << "\n";
  TablePrinter table({"scheme", "classes(4)", "green", "fraud", "premium",
                      "quant.err", "poison kept"});
  auto survival = [](double fraction) {
    if (fraction >= 0.99) return std::string("kept");
    if (fraction <= 0.01) return std::string("lost");
    char buf[16];
    std::snprintf(buf, sizeof(buf), "%.0f%%", 100.0 * fraction);
    return std::string(buf);
  };
  for (const auto& s : result->schemes) {
    table.BeginRow();
    table.AddCell(s.scheme);
    table.AddNumber(s.classes_represented, 1);
    table.AddCell(survival(s.green_class_survives));
    table.AddCell(survival(s.fraud_point_survives));
    table.AddCell(survival(s.premium_point_survives));
    table.AddNumber(s.quantization_error, 4);
    table.AddNumber(s.untrimmed_poison_fraction, 4);
  }
  table.Print(std::cout);
  std::cout << "\nreading guide: 'green' is the 5-point rare segment the "
               "paper's green class; fraud/premium are the two isolated "
               "outliers. The paper's qualitative finding is that the "
               "proposed schemes keep the green class visible while "
               "baselines lose it to poison mass or over-trimming.\n";
  return reporter.WriteJson().ok() ? 0 : 1;
}
