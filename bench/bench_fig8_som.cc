// Fig 6b + Fig 8: SOM classification on Creditcard-like data (20x20 map,
// Tth = 0.95, attack ratio 0.4). The paper reads the result qualitatively:
// Ostrich loses the green segment under poison mass, Baseline0.9 also loses
// the isolated points, Baselinestatic over-represents poison, while
// Titfortat/Elastic preserve the green class at the cost of an isolated
// point. We print the class-structure metrics that encode those readings.
#include <iostream>

#include "bench_util.h"
#include "common/table_printer.h"
#include "exp/experiments.h"

int main(int argc, char** argv) {
  using namespace itrim;
  SomExperimentConfig config;
  config.dataset_size =
      static_cast<size_t>(4000 * bench::EnvScale("ITRIM_BENCH_SCALE", 1.0));
  config.threads = bench::Jobs(argc, argv);
  PrintBanner(std::cout,
              "Fig 8: SOM structure preservation, Creditcard, Tth=0.95, "
              "attack ratio=0.4");
  auto result = RunSomExperiment(config);
  if (!result.ok()) {
    std::cerr << "ERROR: " << result.status().ToString() << "\n";
    return 1;
  }
  std::cout << "groundtruth: classes represented=" << result->groundtruth_classes
            << "/4, quantization error=" << result->groundtruth_qe << "\n";
  TablePrinter table({"scheme", "classes(4)", "green", "fraud", "premium",
                      "quant.err", "poison kept"});
  auto survival = [](double fraction) {
    if (fraction >= 0.99) return std::string("kept");
    if (fraction <= 0.01) return std::string("lost");
    char buf[16];
    std::snprintf(buf, sizeof(buf), "%.0f%%", 100.0 * fraction);
    return std::string(buf);
  };
  for (const auto& s : result->schemes) {
    table.BeginRow();
    table.AddCell(s.scheme);
    table.AddNumber(s.classes_represented, 1);
    table.AddCell(survival(s.green_class_survives));
    table.AddCell(survival(s.fraud_point_survives));
    table.AddCell(survival(s.premium_point_survives));
    table.AddNumber(s.quantization_error, 4);
    table.AddNumber(s.untrimmed_poison_fraction, 4);
  }
  table.Print(std::cout);
  std::cout << "\nreading guide: 'green' is the 5-point rare segment the "
               "paper's green class; fraud/premium are the two isolated "
               "outliers. The paper's qualitative finding is that the "
               "proposed schemes keep the green class visible while "
               "baselines lose it to poison mass or over-trimming.\n";
  return 0;
}
