// Ablation: the Elastic response strength k.
//
// Sweeps k over (0, 1) and reports the analytic equilibrium positions, the
// convergence horizon (rounds until the adversary's position is within 0.1%
// of A*), the Table-IV roundwise cost at 20 rounds, and the measured
// untrimmed-poison fraction from a simulated game. The design trade-off the
// paper discusses: larger k responds more aggressively (deeper equilibrium
// concession A*) but the coupled recurrence converges at rate k^2, so very
// large k oscillates longer and pays more transition cost.
#include <chrono>
#include <cmath>
#include <cstdio>
#include <iostream>

#include "bench/env.h"
#include "bench/flags.h"
#include "bench/reporter.h"
#include "common/rng.h"
#include "common/table_printer.h"
#include "data/generators.h"
#include "exp/experiments.h"
#include "game/collection_game.h"
#include "game/strategies.h"

int main(int argc, char** argv) {
  using namespace itrim;
  bench::BenchReporter reporter("ablation_elastic",
                                bench::ParseFlags(argc, argv));
  const int reps = bench::EnvInt("ITRIM_BENCH_REPS", 3);
  Dataset data = MakeControl(7);

  PrintBanner(std::cout, "Ablation: Elastic response strength k");
  TablePrinter table({"k", "A*-Tth", "T*-Tth", "rounds to converge",
                      "roundwise cost@20 (%)", "untrimmed poison"});
  for (double k : {0.05, 0.1, 0.2, 0.3, 0.5, 0.7, 0.9}) {
    auto cell_start = std::chrono::steady_clock::now();
    ElasticTrace trace = TraceElasticDynamics(k, 400);
    int converge_round = 400;
    for (size_t i = 0; i < trace.adversary.size(); ++i) {
      if (std::fabs(trace.adversary[i] - trace.fixed_point_adversary) <
          0.001) {
        converge_round = static_cast<int>(i) + 1;
        break;
      }
    }
    double untrimmed = 0.0;
    for (int rep = 0; rep < reps; ++rep) {
      ElasticCollector collector(k);
      ElasticAdversary adversary(k);
      GameConfig config;
      config.rounds = 20;
      config.round_size = 200;
      config.attack_ratio = 0.3;
      config.tth = 0.9;
      config.round_mass_trimming = true;
      config.seed = 42 + static_cast<uint64_t>(rep);
      DistanceCollectionGame game(config, &data, &collector, &adversary,
                                  nullptr);
      auto summary = game.Run();
      if (!summary.ok()) {
        std::cerr << "ERROR: " << summary.status().ToString() << "\n";
        return 1;
      }
      untrimmed += summary->UntrimmedPoisonFraction();
    }
    table.BeginRow();
    table.AddNumber(k, 2);
    table.AddNumber(trace.fixed_point_adversary, 5);
    table.AddNumber(trace.fixed_point_collector, 5);
    table.AddInt(converge_round);
    table.AddNumber(100.0 * ElasticRoundwiseCost(k, 20), 4);
    table.AddNumber(untrimmed / reps, 4);
    char case_name[32];
    std::snprintf(case_name, sizeof(case_name), "k=%.2f", k);
    reporter.AddCase(case_name)
        .Iterations(static_cast<uint64_t>(reps))
        .Ops(static_cast<uint64_t>(reps))
        .WallMs(std::chrono::duration<double, std::milli>(
                    std::chrono::steady_clock::now() - cell_start)
                    .count())
        .Counter("converge_round", converge_round)
        .Counter("untrimmed_poison", untrimmed / reps);
  }
  table.Print(std::cout);
  return reporter.WriteJson().ok() ? 0 : 1;
}
