// Regression-poisoning workload benchmark and quality gate.
//
// Three phases:
//
//   1. Batch defense sweep, two attack arms per contamination level eps:
//      * blatant (flip-and-shift, shift >> noise): poison is separable,
//        both Trim variants recover the clean fit; iTrim's epsilon
//        estimate is gated to within one grid step of the planted
//        fraction here.
//      * evasive (one-sided drag, shift = 3 sigma of the noise): the
//        poison sits just outside the noise band and pulls the fit one
//        way, so a single trimmed refit ranks rows under a dragged model
//        while iterating re-ranks under progressively cleaner fits. The
//        in-binary gate holds the paper's headline on this arm: summed
//        over the grid (several seeds per cell), iterative Trim's
//        clean-subset MSE (the fitted model evaluated on the clean rows)
//        beats one-shot's.
//   2. Interactive play: a TrimmingSession over ResidualScoreModel with
//      the FittedModelReference policy, against both the blatant
//      flip-and-shift adversary and the evasive boundary-walking one.
//      Reports the recovered model's clean MSE and the poison kept/seen
//      books; gated on recovering a model no worse than the undefended
//      batch fit at the same contamination.
//   3. Steady-state throughput of the residual session hot path (batched
//      kernel scoring + per-round refit-and-reselect inside the fitted
//      reference), with the zero-allocation contract asserted on the
//      timed region.
//
// `--smoke` shrinks every phase and is registered with ctest as
// bench/bench_regression_smoke; the CI perf gate holds the smoke numbers
// against bench/baselines/BENCH_regression.json.
#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

#include "bench/alloc_counter.h"
#include "bench/flags.h"
#include "bench/reporter.h"
#include "common/rng.h"
#include "game/reference_policy.h"
#include "game/session.h"
#include "game/strategies.h"
#include "ml/linreg.h"
#include "ml/residual_score_model.h"

namespace itrim {
namespace {

// Mean squared error of `model` over the first `clean` rows of `data` —
// the clean-subset quality metric every arm is scored on.
double CleanMse(const LinearModel& model, const RegressionData& data,
                size_t clean) {
  double sum = 0.0;
  for (size_t i = 0; i < clean; ++i) {
    const double* x = data.xs.data() + i * data.dims;
    const double r = data.ys[i] - model.Predict({x, data.dims});
    sum += r * r;
  }
  return sum / static_cast<double>(clean);
}

// The evasive batch attack: poison rows reuse clean feature rows but push
// the response consistently one way by `shift` — the mirror of what the
// boundary-walking session adversary does per round. Unlike the symmetric
// flip-and-shift (whose flips cancel in the least-squares fit), the drag
// biases every refit, which is exactly the regime that separates one-shot
// from iterative Trim.
size_t DragPoison(RegressionData* data, const LinearModel& reference,
                  double eps, double shift, Rng* rng) {
  const size_t clean = data->size();
  const size_t count =
      static_cast<size_t>(std::floor(eps * static_cast<double>(clean)));
  data->xs.reserve((clean + count) * data->dims);
  data->ys.reserve(clean + count);
  for (size_t k = 0; k < count; ++k) {
    const size_t donor = rng->UniformInt(clean);
    const auto row = data->xs.begin() +
                     static_cast<std::ptrdiff_t>(donor * data->dims);
    std::vector<double> copy(row, row + static_cast<std::ptrdiff_t>(
                                            data->dims));
    const double yhat = reference.Predict({copy.data(), data->dims});
    data->xs.insert(data->xs.end(), copy.begin(), copy.end());
    data->ys.push_back(yhat + shift);
  }
  return count;
}

struct SweepArm {
  double mse_none = 0.0;
  double mse_one_shot = 0.0;
  double mse_iterative = 0.0;
  double eps_hat = -1.0;
  int iterations = 0;
  bool ok = false;
};

// One contamination level of the blatant (flip-and-shift) sweep.
SweepArm RunSweepArm(size_t n, double eps, double shift, uint64_t seed) {
  SweepArm arm;
  RegressionData data = MakeSyntheticRegression(n, 3, /*noise=*/0.05, seed);
  const size_t clean = data.size();
  LinearRegressor regressor;
  LinearModel reference;
  if (!regressor.FitClosedForm(data.xs, data.ys, data.dims, &reference).ok()) {
    return arm;
  }
  Rng poison_rng(seed ^ 0x5EEDULL);
  FlipShiftPoison(&data, reference, eps, shift, &poison_rng);

  LinearModel undefended;
  if (!regressor.FitClosedForm(data.xs, data.ys, data.dims, &undefended)
           .ok()) {
    return arm;
  }
  arm.mse_none = CleanMse(undefended, data, clean);

  TrimOptions one_shot;
  one_shot.eps_hat = eps;
  one_shot.max_iters = 1;
  TrimOptions iterative = one_shot;
  iterative.max_iters = 20;
  // Same seed: the iterative run continues exactly where one-shot stopped.
  Rng rng_one(seed * 31), rng_iter(seed * 31);
  auto one = TrimDefense(data, one_shot, &rng_one);
  auto iter = TrimDefense(data, iterative, &rng_iter);
  if (!one.ok() || !iter.ok()) return arm;
  arm.mse_one_shot = CleanMse(one.ValueOrDie().model, data, clean);
  arm.mse_iterative = CleanMse(iter.ValueOrDie().model, data, clean);
  arm.iterations = iter.ValueOrDie().iterations;

  ITrimOptions itrim_options;
  Rng rng_itrim(seed * 13);
  auto itrim = ITrimDefense(data, itrim_options, &rng_itrim);
  if (!itrim.ok()) return arm;
  arm.eps_hat = itrim.ValueOrDie().eps_hat;
  arm.ok = true;
  return arm;
}

struct EvasiveArm {
  double mean_one_shot = 0.0;
  double mean_iterative = 0.0;
  bool ok = false;
};

// One contamination level of the evasive (drag) sweep, averaged over
// `seeds` independent tasks: per-seed outcomes are noisy (the initial
// subset is random), the means are what the headline gate compares.
EvasiveArm RunEvasiveArm(size_t n, double eps, double shift, int seeds) {
  EvasiveArm arm;
  double sum_one = 0.0, sum_iter = 0.0;
  for (int s = 1; s <= seeds; ++s) {
    const uint64_t seed = static_cast<uint64_t>(s) * 977 +
                          static_cast<uint64_t>(eps * 1000.0);
    RegressionData data = MakeSyntheticRegression(n, 3, /*noise=*/0.05, seed);
    const size_t clean = data.size();
    LinearRegressor regressor;
    LinearModel reference;
    if (!regressor.FitClosedForm(data.xs, data.ys, data.dims, &reference)
             .ok()) {
      return arm;
    }
    Rng poison_rng(seed ^ 0x5EEDULL);
    DragPoison(&data, reference, eps, shift, &poison_rng);

    TrimOptions one_shot;
    one_shot.eps_hat = eps;
    one_shot.max_iters = 1;
    TrimOptions iterative = one_shot;
    iterative.max_iters = 20;
    Rng rng_one(seed * 31), rng_iter(seed * 31);
    auto one = TrimDefense(data, one_shot, &rng_one);
    auto iter = TrimDefense(data, iterative, &rng_iter);
    if (!one.ok() || !iter.ok()) return arm;
    sum_one += CleanMse(one.ValueOrDie().model, data, clean);
    sum_iter += CleanMse(iter.ValueOrDie().model, data, clean);
  }
  arm.mean_one_shot = sum_one / seeds;
  arm.mean_iterative = sum_iter / seeds;
  arm.ok = true;
  return arm;
}

struct PlayResult {
  double clean_mse = 0.0;
  uint64_t poison_seen = 0;
  uint64_t poison_kept = 0;
  uint64_t benign_kept = 0;
  double wall_ms = 0.0;
  bool ok = false;
};

// Phase 2: interactive play under a live adversary. The model retains its
// survivors; the recovered model is the closed-form fit over everything
// the defense let through.
PlayResult RunInteractive(const RegressionData& source, int rounds,
                          AdversaryStrategy* adversary, uint64_t seed) {
  PlayResult result;
  GameConfig config;
  config.rounds = rounds;
  config.round_size = 80;
  config.attack_ratio = 0.15;
  config.bootstrap_size = 160;
  config.board_capacity = 1024;
  config.seed = seed;

  ResidualScoreModel model(&source, PoisonShape::kFlipShift);
  ElasticCollector collector(0.5);
  FittedModelReference policy;
  TrimmingSession session(config, &model, &collector, adversary, nullptr,
                          &policy);
  const auto start = std::chrono::steady_clock::now();
  if (!session.Bootstrap().ok() || !session.RunToCompletion().ok()) {
    return result;
  }
  const auto stop = std::chrono::steady_clock::now();
  result.wall_ms =
      std::chrono::duration<double, std::milli>(stop - start).count();
  const GameSummary summary = session.Finish();
  for (const RoundRecord& round : summary.rounds) {
    result.poison_seen += round.poison_received;
    result.poison_kept += round.poison_kept;
    result.benign_kept += round.benign_kept;
  }

  const RegressionData& kept = model.retained_data();
  LinearRegressor regressor;
  LinearModel recovered;
  if (!regressor.FitClosedForm(kept.xs, kept.ys, kept.dims, &recovered)
           .ok()) {
    return result;
  }
  result.clean_mse = CleanMse(recovered, source, source.size());
  result.ok = true;
  return result;
}

struct ThroughputResult {
  double wall_ms = 0.0;
  uint64_t reports = 0;
  int rounds = 0;
  uint64_t allocations = 0;
  bool ok = false;
};

// Phase 3: steady-state rounds of the residual hot path, timed after a
// warmup so scratch growth stays outside the measurement.
ThroughputResult RunThroughput(const RegressionData& source, int rounds) {
  ThroughputResult result;
  GameConfig config;
  config.rounds = rounds + 40;
  config.round_size = 100;
  config.attack_ratio = 0.15;
  config.bootstrap_size = 200;
  config.board_capacity = 512;
  config.seed = 1213;

  ResidualScoreModel model(&source, PoisonShape::kFlipShift);
  model.set_retain_survivors(false);  // streaming shape
  ElasticCollector collector(0.5);
  FlipShiftAdversary adversary;
  FittedModelReference policy;
  TrimmingSession session(config, &model, &collector, &adversary, nullptr,
                          &policy);
  if (!session.Bootstrap().ok()) return result;
  for (int r = 0; r < 40; ++r) {
    if (!session.Step().ok()) return result;
  }
  bench::AllocCounts before = bench::ThreadAllocCounts();
  const auto start = std::chrono::steady_clock::now();
  for (int r = 0; r < rounds; ++r) {
    auto record = session.Step();
    if (!record.ok()) return result;
    result.reports += record.ValueOrDie().benign_received +
                      record.ValueOrDie().poison_received;
  }
  const auto stop = std::chrono::steady_clock::now();
  result.allocations = (bench::ThreadAllocCounts() - before).allocations;
  result.wall_ms =
      std::chrono::duration<double, std::milli>(stop - start).count();
  result.rounds = rounds;
  result.ok = true;
  return result;
}

}  // namespace
}  // namespace itrim

int main(int argc, char** argv) {
  using namespace itrim;
  const bench::BenchFlags flags = bench::ParseFlags(argc, argv);
  const bool smoke = flags.smoke;
  bench::BenchReporter reporter("regression", flags);

  // Phase 1: the contamination sweep. The grid is identical in smoke and
  // full mode (the nightly strict gate matches case names against the
  // smoke baseline); smoke only shrinks the task sizes.
  const std::vector<double> grid = {0.04, 0.08, 0.12, 0.16, 0.20};
  const double kStep = 0.02;

  // Blatant arm: the trim separates poison cleanly; this is where iTrim's
  // loss knick must land on the planted fraction.
  const size_t blatant_n = smoke ? 500 : 2000;
  for (double eps : grid) {
    const uint64_t seed = 1000 + static_cast<uint64_t>(eps * 1000.0);
    SweepArm arm = RunSweepArm(blatant_n, eps, /*shift=*/6.0, seed);
    if (!arm.ok) {
      std::fprintf(stderr, "FAIL: blatant arm eps=%.2f did not complete\n",
                   eps);
      return 1;
    }
    std::printf(
        "blatant eps=%.2f: clean MSE none %.4f | one-shot %.4f | "
        "iterative %.4f (%d iters) | iTrim eps_hat %.2f\n",
        eps, arm.mse_none, arm.mse_one_shot, arm.mse_iterative,
        arm.iterations, arm.eps_hat);
    char name[64];
    std::snprintf(name, sizeof(name), "sweep/blatant_eps_%02d",
                  static_cast<int>(eps * 100.0 + 0.5));
    reporter.AddCase(name)
        .Ok()
        .Counter("mse_none", arm.mse_none)
        .Counter("mse_one_shot", arm.mse_one_shot)
        .Counter("mse_iterative", arm.mse_iterative)
        .Counter("itrim_eps_hat", arm.eps_hat)
        .Counter("iterations", static_cast<double>(arm.iterations));
    if (std::fabs(arm.eps_hat - eps) > kStep + 1e-9) {
      std::fprintf(stderr,
                   "FAIL: eps=%.2f iTrim estimated %.2f (off by more than "
                   "one grid step)\n",
                   eps, arm.eps_hat);
      return 1;
    }
  }

  // Evasive arm: the one-vs-iterative headline. Per-seed outcomes are
  // noisy, so the gate compares the grid totals.
  const size_t evasive_n = smoke ? 200 : 400;
  const int evasive_seeds = 8;
  double total_one = 0.0, total_iter = 0.0;
  for (double eps : grid) {
    EvasiveArm arm =
        RunEvasiveArm(evasive_n, eps, /*shift=*/0.15, evasive_seeds);
    if (!arm.ok) {
      std::fprintf(stderr, "FAIL: evasive arm eps=%.2f did not complete\n",
                   eps);
      return 1;
    }
    std::printf(
        "evasive eps=%.2f: mean clean MSE one-shot %.5f | iterative %.5f "
        "(ratio %.3f over %d seeds)\n",
        eps, arm.mean_one_shot, arm.mean_iterative,
        arm.mean_iterative / arm.mean_one_shot, evasive_seeds);
    char name[64];
    std::snprintf(name, sizeof(name), "sweep/evasive_eps_%02d",
                  static_cast<int>(eps * 100.0 + 0.5));
    reporter.AddCase(name)
        .Ok()
        .Counter("mean_mse_one_shot", arm.mean_one_shot)
        .Counter("mean_mse_iterative", arm.mean_iterative);
    total_one += arm.mean_one_shot;
    total_iter += arm.mean_iterative;
  }
  std::printf("evasive total: iterative/one-shot clean-MSE ratio %.4f\n",
              total_iter / total_one);
  if (total_iter > total_one) {
    std::fprintf(stderr,
                 "FAIL: iterative Trim clean MSE %.6f did not beat "
                 "one-shot %.6f over the evasive grid\n",
                 total_iter, total_one);
    return 1;
  }

  // Phase 2: interactive play. The undefended batch fit at the session's
  // contamination level is the bar the defense must clear.
  RegressionData source =
      MakeSyntheticRegression(smoke ? 600 : 2000, 3, /*noise=*/0.05, 2024);
  SweepArm bar = RunSweepArm(smoke ? 600 : 2000, 0.15, 6.0, 2024);
  if (!bar.ok) {
    std::fprintf(stderr, "FAIL: interactive baseline arm failed\n");
    return 1;
  }
  const int play_rounds = smoke ? 8 : 40;
  FlipShiftAdversary blatant;
  OptimalRegressionAdversary evasive;
  struct Play {
    const char* label;
    AdversaryStrategy* adversary;
  };
  const Play plays[] = {{"flip_shift", &blatant}, {"optimal", &evasive}};
  for (const Play& play : plays) {
    PlayResult result = RunInteractive(source, play_rounds, play.adversary,
                                       3000 + play_rounds);
    if (!result.ok) {
      std::fprintf(stderr, "FAIL: interactive play (%s) failed\n",
                   play.label);
      return 1;
    }
    const double kept_frac =
        result.poison_seen > 0
            ? static_cast<double>(result.poison_kept) /
                  static_cast<double>(result.poison_seen)
            : 0.0;
    std::printf(
        "interactive %s: clean MSE %.4f (undefended bar %.4f), poison "
        "kept %llu/%llu (%.1f%%), %.1f ms\n",
        play.label, result.clean_mse, bar.mse_none,
        static_cast<unsigned long long>(result.poison_kept),
        static_cast<unsigned long long>(result.poison_seen),
        100.0 * kept_frac, result.wall_ms);
    reporter.AddCase(std::string("interactive/") + play.label)
        .Ok()
        .Counter("clean_mse", result.clean_mse)
        .Counter("undefended_mse", bar.mse_none)
        .Counter("poison_seen", static_cast<double>(result.poison_seen))
        .Counter("poison_kept", static_cast<double>(result.poison_kept))
        .Counter("benign_kept", static_cast<double>(result.benign_kept));
    if (result.clean_mse > bar.mse_none) {
      std::fprintf(stderr,
                   "FAIL: interactive %s recovered MSE %.4f worse than the "
                   "undefended batch fit %.4f\n",
                   play.label, result.clean_mse, bar.mse_none);
      return 1;
    }
  }

  // Phase 3: throughput + the zero-allocation steady state.
  ThroughputResult tp = RunThroughput(source, smoke ? 300 : 1500);
  if (!tp.ok) {
    std::fprintf(stderr, "FAIL: throughput run failed\n");
    return 1;
  }
  const double rounds_per_sec =
      static_cast<double>(tp.rounds) / (tp.wall_ms / 1000.0);
  std::printf(
      "throughput: %d rounds in %.1f ms — %.0f rounds/s, %.0fk reports/s, "
      "%llu allocations in the timed region\n",
      tp.rounds, tp.wall_ms, rounds_per_sec,
      static_cast<double>(tp.reports) / (tp.wall_ms / 1000.0) / 1000.0,
      static_cast<unsigned long long>(tp.allocations));
  reporter.AddCase("session/steady_state")
      .Iterations(static_cast<uint64_t>(tp.rounds))
      .Ops(tp.reports)
      .WallMs(tp.wall_ms)
      .Allocations(tp.allocations)
      .Counter("rounds_per_sec", rounds_per_sec);
  if (tp.allocations != 0) {
    std::fprintf(stderr,
                 "FAIL: residual steady state allocated %llu times\n",
                 static_cast<unsigned long long>(tp.allocations));
    return 1;
  }

  return reporter.WriteJson().ok() ? 0 : 1;
}
