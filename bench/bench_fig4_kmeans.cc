// Fig 4: k-means SSE and centroid distance over Control, Vehicle and Letter
// for six schemes at Tth = 0.9, across three attack-ratio bands.
#include "bench_fig_kmeans_common.h"

int main(int argc, char** argv) {
  return itrim::bench::RunKmeansFigure(
      "Fig 4", "fig4_kmeans", 0.9, itrim::bench::ParseFlags(argc, argv));
}
