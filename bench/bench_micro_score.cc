// Microbench + exactness harness for the ScoreModel v2 batched scoring
// path (ScoreInto over the dispatched kernels, game/kernels.h).
//
// Per model kind (identity / distance / LDP reports) this binary
//
//   1. asserts the batched ScoreInto is bit-identical to the retained
//      ScoreIntoScalar reference (checksummed over the whole workload, and
//      across both kernel variants when the CPU has AVX2), and
//   2. times ns/op of both paths on a large observation batch, reporting
//      each as a BENCH_micro_score.json case for the perf gate.
//
// The non-smoke mode additionally asserts the DistanceScoreModel batch
// path is at least 1.5x faster than the scalar reference — the headline
// claim of the v2 redesign on this box. `--smoke` runs the exactness
// phase plus scaled-down timings (registered with ctest as
// bench/bench_micro_score_smoke).
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <limits>
#include <cstring>
#include <string>
#include <vector>

#include "common/rng.h"
#include "data/generators.h"
#include "game/kernels.h"
#include "game/public_board.h"
#include "game/score_model.h"
#include "ldp/attacks.h"
#include "ldp/mechanism.h"
#include "ldp/report_score_model.h"

#include "bench/env.h"
#include "bench/flags.h"
#include "bench/reporter.h"

namespace itrim {
namespace {

bool BitEqual(double a, double b) {
  return std::memcmp(&a, &b, sizeof(double)) == 0;
}

struct Timing {
  double ns_per_obs = std::numeric_limits<double>::infinity();
  uint64_t checksum = 0;
};

// Times one chunk of `n` full-batch scoring sweeps of `obs` through
// `score`, min-updating `t->ns_per_obs` and folding every produced double
// into `t->checksum` so the compiler cannot elide the work and the
// batch/scalar paths can be compared bit for bit. The fold is an XOR of
// the raw bit patterns rather than an FP sum: it costs no serial FP
// latency inside the timed region (a sequential double sum adds ~4
// cycles/element to BOTH paths, compressing the measured ratio) and still
// pins every output bit.
template <typename ScoreFn>
void TimeChunk(ScoreFn score, std::span<const double> obs, size_t count,
               size_t n, Timing* t) {
  std::vector<double> out(count);
  auto start = std::chrono::steady_clock::now();
  for (size_t r = 0; r < n; ++r) {
    if (!score(obs, std::span<double>(out))) {
      std::fprintf(stderr, "FAIL: scoring call errored\n");
      std::exit(1);
    }
    uint64_t fold = 0;
    for (double v : out) {
      uint64_t bits;
      std::memcpy(&bits, &v, sizeof(bits));
      fold ^= bits;
    }
    t->checksum ^= fold + r;  // rep index keeps repeated sweeps visible
  }
  auto stop = std::chrono::steady_clock::now();
  const double ns =
      std::chrono::duration<double, std::nano>(stop - start).count() /
      static_cast<double>(n * count);
  if (ns < t->ns_per_obs) t->ns_per_obs = ns;
}

struct ModelRun {
  double scalar_ns = 0.0;
  double batch_ns = 0.0;
  double speedup = 0.0;
};

// Runs the exactness + timing comparison for one model over one flat
// observation batch. Exits non-zero on any bitwise divergence.
ModelRun RunModel(const ScoreModel& model, const char* label,
                  std::span<const double> obs, size_t count, size_t reps,
                  bench::BenchReporter* reporter) {
  auto batch = [&model](std::span<const double> o, std::span<double> out) {
    return model.ScoreInto(o, out).ok();
  };
  auto scalar = [&model](std::span<const double> o, std::span<double> out) {
    return model.ScoreIntoScalar(o, out).ok();
  };

  // Exactness first: one sweep of each path, compared element-wise, under
  // every available kernel variant.
  std::vector<double> batch_out(count), scalar_out(count);
  const kernels::Variant variants[] = {kernels::Variant::kGeneric,
                                       kernels::Variant::kVector};
  for (kernels::Variant variant : variants) {
    if (variant == kernels::Variant::kVector && !kernels::VectorAvailable()) {
      continue;
    }
    kernels::ForceVariant(variant);
    if (!batch(obs, batch_out) || !scalar(obs, scalar_out)) {
      std::fprintf(stderr, "FAIL[%s]: scoring call errored\n", label);
      std::exit(1);
    }
    for (size_t i = 0; i < count; ++i) {
      if (!BitEqual(batch_out[i], scalar_out[i])) {
        std::fprintf(stderr,
                     "FAIL[%s/%s]: batch diverged from scalar at obs %zu "
                     "(%.17g vs %.17g)\n",
                     label, kernels::VariantName(variant), i, batch_out[i],
                     scalar_out[i]);
        std::exit(1);
      }
    }
  }
  kernels::ResetVariant();

  // The two paths are timed in ALTERNATING chunks, and each path's ns/op
  // is the minimum over its chunks. Alternation makes the pair see the
  // same interference regime (timing them back to back lets a noisy
  // window land on just one path and skew the ratio); the minimum is the
  // standard estimator of true cost under scheduler/steal noise on a
  // shared box. Every rep of both paths still runs and feeds its
  // checksum, so the bit comparison covers the full workload.
  Timing ts, tb;
  const size_t chunks = std::min<size_t>(reps, 16);
  const size_t per_chunk = reps / chunks;
  size_t done = 0;
  for (size_t c = 0; c < chunks; ++c) {
    const size_t n = c + 1 == chunks ? reps - done : per_chunk;
    TimeChunk(scalar, obs, count, n, &ts);
    TimeChunk(batch, obs, count, n, &tb);
    done += n;
  }
  if (ts.checksum != tb.checksum) {
    std::fprintf(stderr,
                 "FAIL[%s]: timed checksums diverged (%016llx vs %016llx)\n",
                 label, static_cast<unsigned long long>(ts.checksum),
                 static_cast<unsigned long long>(tb.checksum));
    std::exit(1);
  }

  ModelRun run;
  run.scalar_ns = ts.ns_per_obs;
  run.batch_ns = tb.ns_per_obs;
  run.speedup = ts.ns_per_obs / tb.ns_per_obs;
  std::printf("%-10s scalar %8.2f ns/obs   batch %8.2f ns/obs   (%.2fx, "
              "%s kernels)\n",
              label, run.scalar_ns, run.batch_ns, run.speedup,
              kernels::VariantName(kernels::ActiveVariant()));
  const uint64_t ops = static_cast<uint64_t>(reps * count);
  reporter->AddCase(std::string(label) + "_scalar")
      .Iterations(static_cast<uint64_t>(reps))
      .Ops(ops)
      .WallMs(run.scalar_ns * static_cast<double>(ops) / 1e6);
  reporter->AddCase(std::string(label) + "_batch")
      .Iterations(static_cast<uint64_t>(reps))
      .Ops(ops)
      .WallMs(run.batch_ns * static_cast<double>(ops) / 1e6)
      .Counter("batch_speedup", run.speedup);
  return run;
}

}  // namespace
}  // namespace itrim

int main(int argc, char** argv) {
  using namespace itrim;
  const bench::BenchFlags flags = bench::ParseFlags(argc, argv);
  bench::BenchReporter reporter("micro_score", flags);
  const bool smoke = flags.smoke;
  const size_t count = static_cast<size_t>(
      bench::EnvInt("ITRIM_BENCH_OBS", smoke ? 2000 : 20000));
  // Smoke still needs enough reps per timed chunk that the sub-ns/op cases
  // (identity/ldp batch are ~a memcpy) measure above timer granularity.
  const size_t reps = static_cast<size_t>(
      bench::EnvInt("ITRIM_BENCH_REPS", smoke ? 100 : 100));

  std::printf("kernel dispatch: %s (AVX2 %savailable), %zu obs x %zu reps\n\n",
              kernels::VariantName(kernels::ActiveVariant()),
              kernels::VectorAvailable() ? "" : "not ", count, reps);

  Rng rng(0xBE9C4ULL);

  // Identity: scores are the values; both paths are a copy.
  std::vector<double> pool(2000);
  for (double& v : pool) v = rng.Uniform();
  IdentityScoreModel identity(&pool);
  if (!identity.BeginRun().ok()) return 1;
  std::vector<double> scalar_obs(count);
  for (double& v : scalar_obs) v = rng.Uniform(-5.0, 5.0);
  RunModel(identity, "identity", scalar_obs, count, reps, &reporter);

  // LDP reports: scores are the reports.
  PiecewiseMechanism mechanism(2.0);
  InputManipulationAttack attack(1.0);
  LdpReportScoreModel ldp(&pool, &mechanism, &attack, 0.9);
  RunModel(ldp, "ldp", scalar_obs, count, reps, &reporter);

  // Distance: d-dimensional rows through the PositionMap geometry — the
  // kernel-backed sweep the 1.5x gate is about. Scored in round-sized
  // batches (a game round hands the model hundreds to a few thousand rows,
  // not tens of thousands) with the rep count scaled up to keep total ops
  // comparable. This also keeps the working set L2-resident: at 20k rows x
  // 60 dims the sweep is DRAM-bandwidth bound and measures the memory bus,
  // not the scoring paths.
  const size_t row_count = static_cast<size_t>(
      bench::EnvInt("ITRIM_BENCH_ROWS", smoke ? 500 : 1000));
  const size_t row_reps = reps * std::max<size_t>(count / row_count, 1);
  Dataset data = MakeControl(35, 60);
  DistanceScoreModel distance(&data);
  PublicBoard board;
  Rng boot_rng(55);
  if (!distance.BeginRun().ok() ||
      !distance.Bootstrap(200, &boot_rng, &board).ok()) {
    std::fprintf(stderr, "FAIL: distance bootstrap errored\n");
    return 1;
  }
  const size_t dims = data.dims();
  std::vector<double> row_obs(row_count * dims);
  for (size_t i = 0; i < row_count; ++i) {
    const auto& row = data.rows[rng.UniformInt(data.rows.size())];
    std::copy(row.begin(), row.end(),
              row_obs.begin() + static_cast<ptrdiff_t>(i * dims));
  }
  ModelRun dist_run =
      RunModel(distance, "distance", row_obs, row_count, row_reps, &reporter);

  if (!smoke && dist_run.speedup < 1.5) {
    std::fprintf(stderr, "FAIL: expected >= 1.5x batch speedup for the "
                         "distance model, got %.2fx\n",
                 dist_run.speedup);
    return 1;
  }
  return reporter.WriteJson().ok() ? 0 : 1;
}
