// google-benchmark microbenchmarks for the LDP stack: mechanism throughput
// and the EM filter fit.
#include <benchmark/benchmark.h>

#include "bench/gbench_bridge.h"

#include "common/rng.h"
#include "ldp/attacks.h"
#include "ldp/emf.h"
#include "ldp/mechanism.h"

namespace {

using namespace itrim;

void BM_MechanismPerturb(benchmark::State& state, const char* name) {
  auto mech = MakeMechanism(name, 2.0).ValueOrDie();
  Rng rng(1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(mech->Perturb(rng.Uniform(-1.0, 1.0), &rng));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK_CAPTURE(BM_MechanismPerturb, laplace, "laplace");
BENCHMARK_CAPTURE(BM_MechanismPerturb, duchi, "duchi");
BENCHMARK_CAPTURE(BM_MechanismPerturb, piecewise, "piecewise");

void BM_ReportModelBuild(benchmark::State& state) {
  PiecewiseMechanism mech(2.0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ReportModel::Build(
        mech, mech.report_lo(), mech.report_hi(), 20, 40,
        static_cast<size_t>(state.range(0))));
  }
  state.SetItemsProcessed(state.iterations() * 20 * state.range(0));
}
BENCHMARK(BM_ReportModelBuild)->Range(1 << 8, 1 << 12);

void BM_EmfFit(benchmark::State& state) {
  PiecewiseMechanism mech(2.0);
  GeneralManipulationAttack attack(1.0);
  Rng rng(2);
  ReportModel model =
      ReportModel::Build(mech, mech.report_lo(), mech.report_hi())
          .ValueOrDie();
  const size_t n = static_cast<size_t>(state.range(0));
  std::vector<double> reports;
  for (size_t i = 0; i < n; ++i) {
    reports.push_back(mech.Perturb(rng.Uniform(-1.0, 1.0), &rng));
  }
  for (size_t i = 0; i < n / 10; ++i) {
    reports.push_back(attack.PoisonReport(mech, &rng));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(FitEmFilter(model, reports, EmfConfig{}));
  }
  state.SetItemsProcessed(state.iterations() * reports.size());
}
BENCHMARK(BM_EmfFit)->Range(1 << 10, 1 << 15);

}  // namespace

int main(int argc, char** argv) {
  return itrim::bench::RunGoogleBenchmarks("micro_ldp", argc, argv);
}
