// Companion experiment: poisoning LDP *frequency* oracles — the setting of
// the EMF baseline's original paper (Du et al.) and of Cao et al.'s
// maximal gain attack, which Section VII positions this work against.
//
// Prints the frequency gain of the MGA and of the evasive input
// manipulation attack on GRR and OUE across privacy budgets, with and
// without the structural report trim — showing the same evasion story as
// the mean-estimation game: blatant forgeries are easy to remove, while
// protocol-compliant poison sails through any static check.
#include <chrono>
#include <cstdio>
#include <iostream>
#include <memory>

#include "bench/env.h"
#include "bench/flags.h"
#include "bench/reporter.h"
#include "common/rng.h"
#include "common/table_printer.h"
#include "common/thread_pool.h"
#include "ldp/frequency.h"

int main(int argc, char** argv) {
  using namespace itrim;
  const bench::BenchFlags flags = bench::ParseFlags(argc, argv);
  bench::BenchReporter reporter("frequency_poisoning", flags);
  const int jobs = flags.jobs;
  const size_t kDomain = 32;
  const size_t kHonest = 20000;
  const size_t kAttackers = 1000;  // 5%
  const std::vector<size_t> kTargets = {28, 29, 30, 31};

  // Zipf-like truth.
  std::vector<double> truth(kDomain);
  double total = 0.0;
  for (size_t v = 0; v < kDomain; ++v) {
    truth[v] = 1.0 / static_cast<double>(v + 1);
    total += truth[v];
  }
  for (double& t : truth) t /= total;

  // A blatant variant that forges two-thirds of the domain at once —
  // structurally impossible for an honest report.
  std::vector<size_t> wide_targets(24);
  for (size_t t = 0; t < wide_targets.size(); ++t) {
    wide_targets[t] = kDomain - 1 - t;
  }

  PrintBanner(std::cout,
              "Frequency-oracle poisoning: target gain (domain 32, 5% "
              "attackers, 4 targets)");
  TablePrinter table({"oracle", "eps", "attack", "gain (no defense)",
                      "gain (structural trim)"});
  // Each (eps, attack) cell seeds its own Rng and builds its own stateless
  // oracle, so the 12 report-generation pipelines fan out across threads
  // and the table is rendered from per-cell results in serial order.
  const std::vector<double> kEpsilons = {0.5, 1.0, 2.0, 4.0};
  struct Cell {
    std::string attack_label;
    double eps = 0.0;
    double gain_plain = 0.0;
    double gain_trimmed = 0.0;
  };
  std::vector<Cell> cells(kEpsilons.size() * 3);
  auto grid_start = std::chrono::steady_clock::now();
  ParallelFor(
      cells.size(),
      [&](size_t cell) {
        const double eps = kEpsilons[cell / 3];
        const int attack_kind = static_cast<int>(cell % 3);
        auto oue = OueOracle::Make(kDomain, eps).ValueOrDie();
        Rng rng(1234 + static_cast<uint64_t>(eps * 10.0));
        std::unique_ptr<FrequencyAttack> attack;
        std::string attack_label;
        if (attack_kind == 0) {
          attack = std::make_unique<MaximalGainAttack>(wide_targets);
          attack_label = "mga-wide(24)";
        } else if (attack_kind == 1) {
          attack = std::make_unique<MaximalGainAttack>(kTargets);
          attack_label = "mga(4)";
        } else {
          attack = std::make_unique<FrequencyInputManipulation>(kTargets);
          attack_label = "input_manipulation";
        }
        std::vector<std::vector<uint8_t>> reports;
        reports.reserve(kHonest + kAttackers);
        for (size_t i = 0; i < kHonest; ++i) {
          reports.push_back(oue.Perturb(rng.Categorical(truth), &rng));
        }
        for (size_t i = 0; i < kAttackers; ++i) {
          reports.push_back(attack->PoisonReport(oue, &rng));
        }
        const auto& gain_targets = attack_kind == 0 ? wide_targets : kTargets;
        auto gain_with = [&](bool trimmed) {
          std::vector<char> keep(reports.size(), 1);
          if (trimmed) keep = TrimOueReports(reports, oue);
          ReportAggregator agg(kDomain);
          for (size_t i = 0; i < reports.size(); ++i) {
            if (keep[i]) agg.Add(reports[i]);
          }
          auto estimate = oue.Estimate(agg.bit_counts(), agg.count());
          return FrequencyGain(estimate, truth, gain_targets);
        };
        cells[cell].attack_label = attack_label;
        cells[cell].eps = eps;
        cells[cell].gain_plain = gain_with(false);
        cells[cell].gain_trimmed = gain_with(true);
      },
      jobs);
  const double grid_ms = std::chrono::duration<double, std::milli>(
                             std::chrono::steady_clock::now() - grid_start)
                             .count();
  reporter.AddCase("oue_grid")
      .Iterations(static_cast<uint64_t>(cells.size()))
      .Ops(static_cast<uint64_t>(cells.size()) * (kHonest + kAttackers))
      .WallMs(grid_ms)
      .Counter("reports_per_cell",
               static_cast<double>(kHonest + kAttackers));
  for (const Cell& cell : cells) {
    table.BeginRow();
    table.AddCell("oue");
    table.AddNumber(cell.eps, 1);
    table.AddCell(cell.attack_label);
    table.AddNumber(cell.gain_plain, 4);
    table.AddNumber(cell.gain_trimmed, 4);
    char case_name[64];
    std::snprintf(case_name, sizeof(case_name), "%s/eps=%.1f",
                  cell.attack_label.c_str(), cell.eps);
    reporter.AddCase(case_name)
        .Counter("gain_plain", cell.gain_plain)
        .Counter("gain_trimmed", cell.gain_trimmed)
        .Ok();
  }
  table.Print(std::cout);
  std::cout << "\nreading guide: the structural trim wipes out the blatant "
               "wide MGA, barely dents the plausible 4-target MGA, and "
               "cannot touch the protocol-compliant input manipulation — "
               "the evasion gap the interactive-trimming game closes for "
               "numeric collection.\n";
  return reporter.WriteJson().ok() ? 0 : 1;
}
