// Fig 5: the Fig 4 experiment repeated with the more conservative
// Tth = 0.97 threshold.
#include "bench_fig_kmeans_common.h"

int main(int argc, char** argv) {
  return itrim::bench::RunKmeansFigure(
      "Fig 5", "fig5_kmeans", 0.97, itrim::bench::ParseFlags(argc, argv));
}
