// google-benchmark microbenchmarks for the core library: quantiles,
// trimming, the public board, and the collection-game round loop.
#include <benchmark/benchmark.h>

#include "bench/gbench_bridge.h"

#include "common/rng.h"
#include "game/collection_game.h"
#include "game/public_board.h"
#include "game/strategies.h"
#include "game/trimmer.h"
#include "ml/kmeans.h"
#include "stats/quantile.h"

namespace {

using namespace itrim;

std::vector<double> RandomValues(size_t n, uint64_t seed) {
  Rng rng(seed);
  std::vector<double> v(n);
  for (auto& x : v) x = rng.Normal();
  return v;
}

void BM_ExactQuantile(benchmark::State& state) {
  auto values = RandomValues(static_cast<size_t>(state.range(0)), 1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(Quantile(values, 0.9));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_ExactQuantile)->Range(1 << 10, 1 << 18);

void BM_P2Quantile(benchmark::State& state) {
  auto values = RandomValues(static_cast<size_t>(state.range(0)), 2);
  for (auto _ : state) {
    P2Quantile est(0.9);
    for (double v : values) est.Add(v);
    benchmark::DoNotOptimize(est.Estimate());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_P2Quantile)->Range(1 << 10, 1 << 18);

void BM_TrimAtReferencePercentile(benchmark::State& state) {
  auto reference = RandomValues(10000, 3);
  auto round = RandomValues(static_cast<size_t>(state.range(0)), 4);
  for (auto _ : state) {
    auto outcome = TrimAtReferencePercentile(round, reference, 0.9);
    benchmark::DoNotOptimize(outcome);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_TrimAtReferencePercentile)->Range(1 << 8, 1 << 16);

void BM_TrimTopFraction(benchmark::State& state) {
  auto round = RandomValues(static_cast<size_t>(state.range(0)), 5);
  for (auto _ : state) {
    auto outcome = TrimTopFraction(round, 0.9);
    benchmark::DoNotOptimize(outcome);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_TrimTopFraction)->Range(1 << 8, 1 << 16);

void BM_PublicBoardRecordAndQuantile(benchmark::State& state) {
  auto values = RandomValues(static_cast<size_t>(state.range(0)), 6);
  for (auto _ : state) {
    PublicBoard board(20000, 7);
    board.Record(values);
    benchmark::DoNotOptimize(board.Quantile(0.9));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_PublicBoardRecordAndQuantile)->Range(1 << 10, 1 << 16);

void BM_ScalarGameRound(benchmark::State& state) {
  auto pool = RandomValues(10000, 8);
  for (auto _ : state) {
    GameConfig config;
    config.rounds = 5;
    config.round_size = static_cast<size_t>(state.range(0));
    config.attack_ratio = 0.2;
    config.seed = 9;
    ElasticCollector collector(0.5);
    ElasticAdversary adversary(0.5);
    ScalarCollectionGame game(config, &pool, &collector, &adversary, nullptr);
    benchmark::DoNotOptimize(game.Run());
  }
  state.SetItemsProcessed(state.iterations() * 5 * state.range(0));
}
BENCHMARK(BM_ScalarGameRound)->Range(1 << 8, 1 << 12);

void BM_KMeans(benchmark::State& state) {
  Rng rng(10);
  std::vector<std::vector<double>> points;
  for (int i = 0; i < state.range(0); ++i) {
    points.push_back({rng.Normal(i % 4, 0.3), rng.Normal(i % 2, 0.3)});
  }
  for (auto _ : state) {
    KMeansConfig config;
    config.k = 4;
    config.seed = 11;
    benchmark::DoNotOptimize(KMeans(points, config));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_KMeans)->Range(1 << 8, 1 << 12);

}  // namespace

int main(int argc, char** argv) {
  return itrim::bench::RunGoogleBenchmarks("micro_core", argc, argv);
}
