// Ablation: the two trimming semantics DESIGN.md calls out.
//
//  * reference  — cutoff at the clean calibration sample's T-quantile value;
//    survival is the crisp rule "position <= T".
//  * round-mass — remove the top (1-T) fraction of each received round (the
//    MATLAB prctile-on-received semantics the paper's pipeline used); poison
//    atoms are only partially removed once they exceed the capacity.
//
// The table shows how the choice changes poison survival and benign loss
// for each scheme at a heavy attack ratio — the reason the ML experiments
// default to round-mass (it reproduces the paper's partial-evasion numbers)
// while the scalar games default to reference (it matches the game theory's
// sharp threshold logic).
#include <chrono>
#include <iostream>
#include <string>

#include "bench/env.h"
#include "bench/flags.h"
#include "bench/reporter.h"
#include "common/table_printer.h"
#include "data/generators.h"
#include "exp/schemes.h"
#include "game/collection_game.h"

int main(int argc, char** argv) {
  using namespace itrim;
  bench::BenchReporter reporter("ablation_semantics",
                                bench::ParseFlags(argc, argv));
  const double kTth = 0.9;
  const double kRatio = 0.3;
  const int reps = bench::EnvInt("ITRIM_BENCH_REPS", 3);
  Dataset data = MakeControl(2024);

  PrintBanner(std::cout,
              "Ablation: reference-percentile vs round-mass trimming "
              "(Control, ratio 0.3, Tth 0.9)");
  TablePrinter table({"scheme", "semantics", "poison survival", "benign loss",
                      "untrimmed fraction"});
  for (SchemeId id : PlottedSchemes()) {
    for (bool round_mass : {false, true}) {
      auto cell_start = std::chrono::steady_clock::now();
      double survival = 0.0, loss = 0.0, untrimmed = 0.0;
      for (int rep = 0; rep < reps; ++rep) {
        SchemeOptions opts;
        opts.seed = 11 + static_cast<uint64_t>(rep);
        SchemeInstance scheme = MakeScheme(id, kTth, opts);
        GameConfig config;
        config.rounds = 15;
        config.round_size = 200;
        config.attack_ratio = kRatio;
        config.tth = kTth;
        config.round_mass_trimming = round_mass;
        config.seed = 1000 + static_cast<uint64_t>(rep) * 7 +
                      static_cast<uint64_t>(id);
        DistanceCollectionGame game(config, &data, scheme.collector.get(),
                                    scheme.adversary.get(),
                                    scheme.quality.get());
        auto summary = game.Run();
        if (!summary.ok()) {
          std::cerr << "ERROR: " << summary.status().ToString() << "\n";
          return 1;
        }
        survival += summary->PoisonSurvivalRate();
        loss += summary->BenignLossFraction();
        untrimmed += summary->UntrimmedPoisonFraction();
      }
      table.BeginRow();
      table.AddCell(SchemeName(id));
      table.AddCell(round_mass ? "round-mass" : "reference");
      table.AddNumber(survival / reps, 4);
      table.AddNumber(loss / reps, 4);
      table.AddNumber(untrimmed / reps, 4);
      reporter
          .AddCase(std::string(SchemeName(id)) + "/" +
                   (round_mass ? "round_mass" : "reference"))
          .Iterations(static_cast<uint64_t>(reps))
          .Ops(static_cast<uint64_t>(reps))
          .WallMs(std::chrono::duration<double, std::milli>(
                      std::chrono::steady_clock::now() - cell_start)
                      .count())
          .Counter("poison_survival", survival / reps)
          .Counter("benign_loss", loss / reps);
    }
  }
  table.Print(std::cout);
  return reporter.WriteJson().ok() ? 0 : 1;
}
