#!/usr/bin/env python3
"""Renders an obs_trace JSON dump as per-tenant round timelines.

src/obs/export.cc's TracesJson() serializes the merged TraceBuffer
snapshot (IngestService::TraceSnapshot() or examples/obs_quickstart) as

  { "schema_version": 1, "kind": "obs_trace", "dropped": N,
    "events": [ {"seq": N, "ts_ns": N, "kind": "round_start",
                 "tenant": N, "value": X}, ... ] }

This tool groups the events by tenant and folds round_start/round_end
pairs into one timeline row per round, annotated with the decisions that
happened inside it (trim_decision, reference_refit) and the lifecycle
events between rounds (hibernate, rehydrate, backpressure_block,
rate_limit_shed). It doubles as the trace-schema regression fixture: CI
runs `--selftest`, which renders an embedded dump and compares against
the expected timeline, so a schema change in the C++ exporter that would
break consumers fails the build instead of their dashboards.

Usage:
  trace_dump.py TRACES.json            # all tenants
  trace_dump.py --tenant 3 TRACES.json # one tenant
  trace_dump.py --selftest

Timestamps are printed relative to the first event (ms). Uses only the
Python standard library. Exit 1 on malformed input.
"""

import argparse
import io
import json
import sys

ROUND_BOUNDS = {"round_start", "round_end"}
IN_ROUND = {"trim_decision", "reference_refit"}
LIFECYCLE = {"hibernate", "rehydrate", "backpressure_block",
             "rate_limit_shed"}
KNOWN_KINDS = ROUND_BOUNDS | IN_ROUND | LIFECYCLE


def load_trace(text, origin="<input>"):
    try:
        dump = json.loads(text)
    except json.JSONDecodeError as err:
        sys.exit(f"{origin}: not valid JSON ({err.msg} at line "
                 f"{err.lineno})")
    if not isinstance(dump, dict) or dump.get("kind") != "obs_trace":
        sys.exit(f"{origin}: not an obs_trace dump (kind = "
                 f"{dump.get('kind')!r} )" if isinstance(dump, dict)
                 else f"{origin}: expected a JSON object")
    if dump.get("schema_version") != 1:
        sys.exit(f"{origin}: unsupported schema_version "
                 f"{dump.get('schema_version')!r}")
    events = dump.get("events")
    if not isinstance(events, list):
        sys.exit(f"{origin}: 'events' must be a list")
    for ev in events:
        if not isinstance(ev, dict) or not {"seq", "ts_ns", "kind",
                                            "tenant", "value"} <= set(ev):
            sys.exit(f"{origin}: malformed event {ev!r}")
        if ev["kind"] not in KNOWN_KINDS:
            sys.exit(f"{origin}: unknown event kind {ev['kind']!r} — "
                     "trace_dump.py and src/obs/trace.h are out of sync")
    return dump


def render(dump, tenant_filter=None, out=sys.stdout):
    events = sorted(dump["events"], key=lambda ev: (ev["ts_ns"], ev["seq"]))
    t0 = events[0]["ts_ns"] if events else 0
    by_tenant = {}
    for ev in events:
        if tenant_filter is not None and ev["tenant"] != tenant_filter:
            continue
        by_tenant.setdefault(ev["tenant"], []).append(ev)

    dropped = dump.get("dropped", 0)
    print(f"{sum(len(v) for v in by_tenant.values())} events, "
          f"{len(by_tenant)} tenant(s), {dropped} dropped"
          + (" (timeline may have gaps)" if dropped else ""), file=out)

    for tenant in sorted(by_tenant):
        print(f"\ntenant {tenant}:", file=out)
        open_round = None   # (round_number, start_ts, annotations)
        for ev in by_tenant[tenant]:
            ms = (ev["ts_ns"] - t0) / 1e6
            kind, value = ev["kind"], ev["value"]
            if kind == "round_start":
                if open_round is not None:
                    print(f"  [{open_round[1]:10.3f} ms] round "
                          f"{open_round[0]:.0f} (no round_end recorded)",
                          file=out)
                open_round = (value, ms, [])
            elif kind == "round_end":
                if open_round is None:
                    print(f"  [{ms:10.3f} ms] round_end quality="
                          f"{value:.4f} (no round_start recorded)",
                          file=out)
                    continue
                number, start_ms, notes = open_round
                annotation = (" " + ", ".join(notes)) if notes else ""
                print(f"  [{start_ms:10.3f} ms] round {number:.0f} "
                      f"({ms - start_ms:.3f} ms) quality={value:.4f}"
                      f"{annotation}", file=out)
                open_round = None
            elif kind in IN_ROUND:
                note = (f"trimmed={value:.0f}" if kind == "trim_decision"
                        else f"refit_iters={value:.0f}")
                if open_round is not None:
                    open_round[2].append(note)
                else:
                    print(f"  [{ms:10.3f} ms] {kind} {note}", file=out)
            else:  # lifecycle
                detail = {"hibernate": "parked_rounds",
                          "rehydrate": "restored_rounds",
                          "backpressure_block": "queue_capacity",
                          "rate_limit_shed": "shed_reports"}[kind]
                print(f"  [{ms:10.3f} ms] {kind} {detail}={value:.0f}",
                      file=out)
        if open_round is not None:
            print(f"  [{open_round[1]:10.3f} ms] round "
                  f"{open_round[0]:.0f} (no round_end recorded)", file=out)


SELFTEST_DUMP = """\
{
  "schema_version": 1,
  "kind": "obs_trace",
  "dropped": 0,
  "events": [
    {"seq": 0, "ts_ns": 1000000, "kind": "round_start", "tenant": 0,
     "value": 1},
    {"seq": 1, "ts_ns": 1500000, "kind": "trim_decision", "tenant": 0,
     "value": 4},
    {"seq": 2, "ts_ns": 2000000, "kind": "round_end", "tenant": 0,
     "value": 0.9375},
    {"seq": 3, "ts_ns": 2200000, "kind": "hibernate", "tenant": 0,
     "value": 1},
    {"seq": 4, "ts_ns": 2500000, "kind": "round_start", "tenant": 1,
     "value": 1},
    {"seq": 5, "ts_ns": 2600000, "kind": "reference_refit", "tenant": 1,
     "value": 3},
    {"seq": 6, "ts_ns": 2700000, "kind": "trim_decision", "tenant": 1,
     "value": 2},
    {"seq": 7, "ts_ns": 3000000, "kind": "round_end", "tenant": 1,
     "value": 0.5},
    {"seq": 8, "ts_ns": 3500000, "kind": "rehydrate", "tenant": 0,
     "value": 1}
  ]
}
"""

SELFTEST_EXPECTED = """\
9 events, 2 tenant(s), 0 dropped

tenant 0:
  [     0.000 ms] round 1 (1.000 ms) quality=0.9375 trimmed=4
  [     1.200 ms] hibernate parked_rounds=1
  [     2.500 ms] rehydrate restored_rounds=1

tenant 1:
  [     1.500 ms] round 1 (0.500 ms) quality=0.5000 refit_iters=3, trimmed=2
"""


def selftest():
    dump = load_trace(SELFTEST_DUMP, "selftest")
    buffer = io.StringIO()
    render(dump, out=buffer)
    got = buffer.getvalue()
    if got != SELFTEST_EXPECTED:
        print("SELFTEST FAIL: rendered timeline diverged from the "
              "expected fixture.\n--- expected ---\n" + SELFTEST_EXPECTED +
              "--- got ---\n" + got, file=sys.stderr)
        return 1
    print("trace_dump selftest ok")
    return 0


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("file", nargs="?", help="obs_trace JSON dump")
    parser.add_argument("--tenant", type=int, default=None,
                        help="only this tenant's timeline")
    parser.add_argument("--selftest", action="store_true",
                        help="render the embedded fixture and compare")
    args = parser.parse_args()
    if args.selftest:
        return selftest()
    if not args.file:
        parser.error("no input file (or use --selftest)")
    try:
        with open(args.file) as f:
            text = f.read()
    except OSError as err:
        sys.exit(f"{args.file}: cannot read: {err.strerror or err}")
    render(load_trace(text, args.file), tenant_filter=args.tenant)
    return 0


if __name__ == "__main__":
    sys.exit(main())
