#!/usr/bin/env python3
"""Lints a Prometheus text-exposition file (version 0.0.4).

CI runs this over the OBS_scrape.prom that bench_obs publishes, so a
format regression in src/obs/export.cc (a family emitted without TYPE, a
non-cumulative histogram, a broken label escape) fails the perf-gate leg
instead of silently producing a scrape Prometheus would reject or
misread.

Checks:

  * line grammar: every line is `# HELP <name> <text>`, `# TYPE <name>
    <type>`, a sample `name{labels} value`, or blank;
  * metric and label names match the Prometheus charset, label values are
    properly quoted/escaped, sample values parse as floats (+Inf/-Inf/NaN
    allowed);
  * HELP/TYPE appear at most once per family, before its samples, with a
    known type (counter/gauge/histogram/summary/untyped);
  * counter sample names end in `_total`;
  * histogram families carry `_bucket` samples with an `le` label, bucket
    counts are cumulative and non-decreasing per label set, the `+Inf`
    bucket exists and equals the family's `_count`, and `_sum`/`_count`
    are present;
  * no duplicate sample (same name and label set);
  * the file ends with a newline.

Usage: promlint.py FILE...   (or `promlint.py --selftest`)

Uses only the Python standard library. Exit status 0 = clean, 1 = lint
errors (listed one per line on stderr).
"""

import argparse
import math
import re
import sys

METRIC_NAME = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
LABEL_NAME = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")
KNOWN_TYPES = {"counter", "gauge", "histogram", "summary", "untyped"}
SAMPLE = re.compile(r"^([a-zA-Z_:][a-zA-Z0-9_:]*)(\{.*\})?\s+(\S+)$")


def parse_labels(raw, errors, lineno):
    """Parses `{k="v",...}` into a sorted tuple of (key, value) pairs.
    Returns None (and appends to errors) on malformed syntax."""
    if raw is None:
        return ()
    body = raw[1:-1]
    labels = []
    pos = 0
    while pos < len(body):
        eq = body.find("=", pos)
        if eq < 0:
            errors.append(f"line {lineno}: malformed label pair in {raw!r}")
            return None
        name = body[pos:eq]
        if not LABEL_NAME.match(name):
            errors.append(f"line {lineno}: bad label name {name!r}")
            return None
        if eq + 1 >= len(body) or body[eq + 1] != '"':
            errors.append(f"line {lineno}: label value of {name!r} must be "
                          "double-quoted")
            return None
        # Scan the quoted value honoring \\, \" and \n escapes.
        value_chars = []
        i = eq + 2
        while i < len(body):
            c = body[i]
            if c == "\\":
                if i + 1 >= len(body) or body[i + 1] not in ('\\', '"', 'n'):
                    errors.append(f"line {lineno}: bad escape in label value "
                                  f"of {name!r}")
                    return None
                value_chars.append({"\\": "\\", '"': '"',
                                    "n": "\n"}[body[i + 1]])
                i += 2
                continue
            if c == '"':
                break
            value_chars.append(c)
            i += 1
        else:
            errors.append(f"line {lineno}: unterminated label value of "
                          f"{name!r}")
            return None
        labels.append((name, "".join(value_chars)))
        pos = i + 1
        if pos < len(body):
            if body[pos] != ",":
                errors.append(f"line {lineno}: expected ',' between labels "
                              f"in {raw!r}")
                return None
            pos += 1
    return tuple(sorted(labels))


def parse_value(raw):
    try:
        return float(raw)
    except ValueError:
        return None


def family_of(sample_name):
    """Strips the histogram/summary sample suffixes to the family name."""
    for suffix in ("_bucket", "_sum", "_count"):
        if sample_name.endswith(suffix):
            return sample_name[:-len(suffix)]
    return sample_name


def lint(text, origin="<input>"):
    """Returns a list of error strings (empty = clean)."""
    errors = []
    if text and not text.endswith("\n"):
        errors.append(f"{origin}: missing trailing newline")
    helped, typed = {}, {}
    sampled_families = set()
    seen_samples = set()
    # family -> {labelset-without-le: [(le, value)]}
    buckets = {}
    sums, counts = {}, {}

    for lineno, line in enumerate(text.splitlines(), start=1):
        if not line.strip():
            continue
        if line.startswith("#"):
            parts = line.split(None, 3)
            if len(parts) < 2 or parts[1] not in ("HELP", "TYPE"):
                continue  # free-form comment: allowed
            if len(parts) < 3 or not METRIC_NAME.match(parts[2]):
                errors.append(f"line {lineno}: malformed {parts[1]} comment")
                continue
            name = parts[2]
            if parts[1] == "HELP":
                if name in helped:
                    errors.append(f"line {lineno}: duplicate HELP for "
                                  f"{name!r}")
                helped[name] = lineno
            else:
                kind = parts[3].strip() if len(parts) > 3 else ""
                if kind not in KNOWN_TYPES:
                    errors.append(f"line {lineno}: unknown TYPE {kind!r} "
                                  f"for {name!r}")
                if name in typed:
                    errors.append(f"line {lineno}: duplicate TYPE for "
                                  f"{name!r}")
                if name in sampled_families:
                    errors.append(f"line {lineno}: TYPE for {name!r} after "
                                  "its samples")
                typed[name] = kind
            continue

        match = SAMPLE.match(line)
        if not match:
            errors.append(f"line {lineno}: unparseable sample line {line!r}")
            continue
        sample_name, raw_labels, raw_value = match.groups()
        labels = parse_labels(raw_labels, errors, lineno)
        if labels is None:
            continue
        value = parse_value(raw_value)
        if value is None:
            errors.append(f"line {lineno}: sample value {raw_value!r} is "
                          "not a float")
            continue
        if (sample_name, labels) in seen_samples:
            errors.append(f"line {lineno}: duplicate sample {sample_name}"
                          f"{raw_labels or ''}")
        seen_samples.add((sample_name, labels))

        family = family_of(sample_name)
        ftype = typed.get(family) or typed.get(sample_name)
        sampled_families.add(family if ftype else sample_name)
        if ftype == "counter" and not sample_name.endswith("_total"):
            errors.append(f"line {lineno}: counter sample {sample_name!r} "
                          "does not end in _total")
        if ftype == "histogram":
            rest = tuple(kv for kv in labels if kv[0] != "le")
            if sample_name.endswith("_bucket"):
                le = dict(labels).get("le")
                if le is None:
                    errors.append(f"line {lineno}: histogram bucket of "
                                  f"{family!r} has no le label")
                    continue
                le_value = parse_value(le)
                if le_value is None:
                    errors.append(f"line {lineno}: unparseable le={le!r}")
                    continue
                buckets.setdefault(family, {}).setdefault(rest, []).append(
                    (le_value, value))
            elif sample_name.endswith("_sum"):
                sums.setdefault(family, set()).add(rest)
            elif sample_name.endswith("_count"):
                counts.setdefault(family, {})[rest] = value

    for name in sampled_families:
        if name not in typed and family_of(name) not in typed:
            errors.append(f"family {name!r} has samples but no TYPE")

    for family, kind in typed.items():
        if kind != "histogram":
            continue
        for labelset, series in buckets.get(family, {}).items():
            pretty = "{" + ",".join(f'{k}="{v}"' for k, v in labelset) + "}"
            series.sort(key=lambda pair: pair[0])
            if not series or not math.isinf(series[-1][0]):
                errors.append(f"histogram {family}{pretty}: no +Inf bucket")
                continue
            cumulative = [v for _, v in series]
            if cumulative != sorted(cumulative):
                errors.append(f"histogram {family}{pretty}: bucket counts "
                              "are not cumulative")
            total = counts.get(family, {}).get(labelset)
            if total is None:
                errors.append(f"histogram {family}{pretty}: missing _count")
            elif total != cumulative[-1]:
                errors.append(f"histogram {family}{pretty}: _count {total} "
                              f"!= +Inf bucket {cumulative[-1]}")
            if labelset not in sums.get(family, set()):
                errors.append(f"histogram {family}{pretty}: missing _sum")
        if family in typed and family not in buckets and \
                family in sampled_families:
            errors.append(f"histogram {family!r} has samples but no "
                          "_bucket series")
    return errors


GOOD_FIXTURE = """\
# HELP itrim_ingest_events_accepted_total Events accepted.
# TYPE itrim_ingest_events_accepted_total counter
itrim_ingest_events_accepted_total{slot="shard0"} 5
itrim_ingest_events_accepted_total{slot="shard1"} 2
# HELP itrim_ingest_queue_depth Queue depth.
# TYPE itrim_ingest_queue_depth gauge
itrim_ingest_queue_depth{slot="shard0"} 3
# HELP itrim_ingest_pop_batch_size Batch sizes.
# TYPE itrim_ingest_pop_batch_size histogram
itrim_ingest_pop_batch_size_bucket{slot="shard0",le="1"} 1
itrim_ingest_pop_batch_size_bucket{slot="shard0",le="+Inf"} 2
itrim_ingest_pop_batch_size_sum{slot="shard0"} 101
itrim_ingest_pop_batch_size_count{slot="shard0"} 2
# HELP itrim_build_info Build identity.
# TYPE itrim_build_info gauge
itrim_build_info{kernel="generic",board="flat"} 1
"""

BAD_FIXTURES = {
    "missing TYPE": "itrim_orphan_total 3\n",
    "non-cumulative histogram": (
        "# TYPE itrim_h histogram\n"
        'itrim_h_bucket{le="1"} 5\n'
        'itrim_h_bucket{le="+Inf"} 2\n'
        "itrim_h_sum 1\nitrim_h_count 2\n"),
    "no +Inf bucket": (
        "# TYPE itrim_h histogram\n"
        'itrim_h_bucket{le="1"} 1\n'
        "itrim_h_sum 1\nitrim_h_count 1\n"),
    "count mismatch": (
        "# TYPE itrim_h histogram\n"
        'itrim_h_bucket{le="+Inf"} 2\n'
        "itrim_h_sum 1\nitrim_h_count 3\n"),
    "counter without _total": (
        "# TYPE itrim_c counter\nitrim_c 1\n"),
    "duplicate sample": (
        "# TYPE itrim_g gauge\nitrim_g 1\nitrim_g 2\n"),
    "bad label quoting": (
        "# TYPE itrim_g gauge\nitrim_g{slot=shard0} 1\n"),
    "bad value": (
        "# TYPE itrim_g gauge\nitrim_g pancake\n"),
    "missing trailing newline": (
        "# TYPE itrim_g gauge\nitrim_g 1"),
}


def selftest():
    failures = []
    good_errors = lint(GOOD_FIXTURE, "good")
    if good_errors:
        failures.append(f"good fixture flagged: {good_errors}")
    for label, fixture in BAD_FIXTURES.items():
        if not lint(fixture, label):
            failures.append(f"bad fixture {label!r} passed the lint")
    if failures:
        for failure in failures:
            print(f"SELFTEST FAIL: {failure}", file=sys.stderr)
        return 1
    print(f"promlint selftest ok ({1 + len(BAD_FIXTURES)} fixtures)")
    return 0


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("files", nargs="*", help="exposition files to lint")
    parser.add_argument("--selftest", action="store_true",
                        help="lint the embedded fixtures and exit")
    args = parser.parse_args()
    if args.selftest:
        return selftest()
    if not args.files:
        parser.error("no files given (or use --selftest)")
    status = 0
    for path in args.files:
        try:
            with open(path) as f:
                text = f.read()
        except OSError as err:
            print(f"{path}: cannot read: {err.strerror or err}",
                  file=sys.stderr)
            status = 1
            continue
        errors = lint(text, path)
        for error in errors:
            print(f"{path}: {error}", file=sys.stderr)
        if errors:
            status = 1
        else:
            print(f"{path}: clean ({len(text.splitlines())} lines)")
    return status


if __name__ == "__main__":
    sys.exit(main())
