#!/usr/bin/env python3
"""CI perf-regression gate over BENCH_<name>.json telemetry.

Compares a freshly emitted bench report against a checked-in baseline
(bench/baselines/) and fails when a shared case regresses:

  * throughput (ops_per_sec) below (1 - tolerance) x baseline, for cases
    the baseline marks gated (see below);
  * allocations above the baseline for cases whose baseline allocation
    count is zero — the zero-allocation steady-state contract is
    machine-independent, so it is enforced exactly, with no tolerance;
  * a gated baseline case missing from the current report (a silently
    dropped bench would otherwise "pass" forever);
  * a malformed histogram entry in either report — cases may carry a
    "histograms" object (bench_obs attaches its scrape distributions) and
    every histogram must have strictly ascending bounds, len(bounds) + 1
    bucket counts and a total equal to the bucket sum.

Case pairs named `<label>_off` / `<label>_on` (the A/B shape bench_obs
emits for observability overhead) additionally get their relative
overhead printed for current and baseline, so a creeping feature cost
stays visible even while both arms hold their individual floors.

Cases present in the current report but absent from the baseline cannot
gate (there is nothing to compare against); they are always listed in the
output so a case rename or an un-baselined bench is visible, and with
--strict they fail the gate — the nightly job runs strict so every
emitted case is forced to carry a baseline entry.

Which cases gate throughput is controlled by the baseline file itself: a
case gates iff it carries timing (ops > 0 and wall_ms > 0). Correctness
cases (pass = 1, no timing) only gate on presence.

Absolute throughput differs across machines, so the default tolerance is
deliberately loose (35%) — the gate exists to catch step-change
regressions (an accidental O(n^2), a reintroduced per-round allocation),
not 5% noise; the nightly trend over artifact history covers the fine
grain. Override with --tolerance or ITRIM_BENCH_GATE_TOLERANCE.

Individual cases can gate tighter (or looser) than the run-wide default:
a baseline case carrying a "gate_tolerance" key (fraction in [0, 1)) uses
that value instead. The bench binaries never emit this key — it is added
by hand to the checked-in baseline for cases whose workload is stable
enough to hold a tighter line (e.g. the board backend microbenches gate
at 25%), and must be re-added when the baseline is refreshed.

Baseline update procedure (see README "Benchmarking & perf telemetry"):
rerun the bench on the reference machine, eyeball the diff, and copy the
fresh BENCH_<name>.json over bench/baselines/ in the same PR that changes
the performance.

Uses only the Python standard library.
"""

import argparse
import json
import os
import sys


def load(path):
    """Loads one BENCH_<name>.json, exiting with a one-line diagnostic on
    any malformed input (missing file, invalid JSON, wrong shape) instead
    of a traceback — this runs in CI where the traceback buries the cause.
    """
    try:
        with open(path) as f:
            report = json.load(f)
    except OSError as err:
        sys.exit(f"{path}: cannot read bench report: {err.strerror or err}")
    except json.JSONDecodeError as err:
        sys.exit(f"{path}: not valid JSON ({err.msg} at line {err.lineno}) "
                 "— was the bench binary interrupted mid-write?")
    if not isinstance(report, dict):
        sys.exit(f"{path}: expected a JSON object at top level, got "
                 f"{type(report).__name__}")
    if report.get("schema_version") != 1:
        sys.exit(f"{path}: unsupported schema_version "
                 f"{report.get('schema_version')!r}")
    if not isinstance(report.get("cases", []), list):
        sys.exit(f"{path}: 'cases' must be a list, got "
                 f"{type(report.get('cases')).__name__}")
    for case in report.get("cases", []):
        if not isinstance(case, dict) or not case.get("name"):
            sys.exit(f"{path}: malformed case entry {case!r} — every case "
                     "needs a 'name'")
        validate_histograms(path, case)
    return report


def validate_histograms(path, case):
    """Structural check of histogram-valued entries (emitted by benches
    that attach obs distributions, e.g. bench_obs): ascending bounds, one
    overflow bucket (len(counts) == len(bounds) + 1), and a total that
    matches the per-bucket sum. A malformed histogram means the emitting
    side is broken, so it fails the load rather than a single gate."""
    histograms = case.get("histograms", {})
    if not isinstance(histograms, dict):
        sys.exit(f"{path}: case {case['name']!r}: 'histograms' must be an "
                 f"object, got {type(histograms).__name__}")
    for hist_name, hist in histograms.items():
        where = f"{path}: case {case['name']!r} histogram {hist_name!r}"
        if not isinstance(hist, dict):
            sys.exit(f"{where}: expected an object")
        bounds = hist.get("bounds")
        counts = hist.get("counts")
        if not isinstance(bounds, list) or not all(
                isinstance(b, (int, float)) and not isinstance(b, bool)
                for b in bounds):
            sys.exit(f"{where}: 'bounds' must be a list of numbers")
        if bounds != sorted(bounds) or len(set(bounds)) != len(bounds):
            sys.exit(f"{where}: bounds must be strictly ascending, got "
                     f"{bounds}")
        if not isinstance(counts, list) or not all(
                isinstance(c, int) and not isinstance(c, bool) and c >= 0
                for c in counts):
            sys.exit(f"{where}: 'counts' must be a list of non-negative "
                     "integers")
        if len(counts) != len(bounds) + 1:
            sys.exit(f"{where}: expected {len(bounds) + 1} buckets "
                     f"(bounds + overflow), got {len(counts)}")
        total = hist.get("count")
        if not isinstance(total, int) or total != sum(counts):
            sys.exit(f"{where}: 'count' {total!r} does not equal the "
                     f"bucket sum {sum(counts)}")
        if not isinstance(hist.get("sum"), (int, float)):
            sys.exit(f"{where}: 'sum' must be a number")


def cases_by_name(report):
    return {case["name"]: case for case in report.get("cases", [])}


def gates_throughput(case):
    return case.get("ops", 0) > 0 and case.get("wall_ms", 0) > 0


def case_tolerance(base_case, name, default):
    """Per-case override: a hand-added "gate_tolerance" key in the
    baseline case wins over the run-wide default."""
    tolerance = base_case.get("gate_tolerance", default)
    if not isinstance(tolerance, (int, float)) or isinstance(tolerance, bool) \
            or not 0.0 <= tolerance < 1.0:
        sys.exit(f"case {name!r}: gate_tolerance must be a fraction in "
                 f"[0, 1), got {tolerance!r}")
    return float(tolerance)


def overhead_pairs(cases):
    """Yields (label, off_case, on_case) for every `<label>_off` /
    `<label>_on` case pair — the shape benches that A/B a feature's cost
    emit (bench_obs: overhead/ingest_off vs overhead/ingest_on)."""
    for name in sorted(cases):
        if not name.endswith("_off"):
            continue
        on_name = name[:-len("_off")] + "_on"
        if on_name in cases:
            yield name[:-len("_off")], cases[name], cases[on_name]


def report_overhead_deltas(base_cases, cur_cases):
    """Prints the enabled-vs-disabled overhead of each A/B case pair in
    the current report next to the baseline's, so a creeping feature cost
    is visible in the gate log even while both arms individually stay
    above their throughput floors."""
    for label, off, on in overhead_pairs(cur_cases):
        if not (gates_throughput(off) and gates_throughput(on)):
            continue
        cur_pct = (on["wall_ms"] - off["wall_ms"]) / off["wall_ms"] * 100.0
        line = f"{label}_on vs _off: {cur_pct:+.2f}% overhead"
        base_off = base_cases.get(f"{label}_off")
        base_on = base_cases.get(f"{label}_on")
        if base_off and base_on and gates_throughput(base_off) \
                and gates_throughput(base_on):
            base_pct = (base_on["wall_ms"] - base_off["wall_ms"]) \
                / base_off["wall_ms"] * 100.0
            line += f" (baseline {base_pct:+.2f}%)"
        print(line)


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--baseline", required=True,
                        help="checked-in BENCH_<name>.json to gate against")
    parser.add_argument("--current", required=True,
                        help="freshly emitted BENCH_<name>.json")
    parser.add_argument(
        "--tolerance",
        type=float,
        default=float(os.environ.get("ITRIM_BENCH_GATE_TOLERANCE", "0.35")),
        help="allowed fractional throughput regression (default 0.35)")
    parser.add_argument(
        "--strict", action="store_true",
        help="fail when the current report carries cases the baseline does "
             "not (otherwise they are only listed)")
    args = parser.parse_args()

    baseline = load(args.baseline)
    current = load(args.current)
    if baseline.get("bench") != current.get("bench"):
        sys.exit(f"bench name mismatch: baseline {baseline.get('bench')!r} "
                 f"vs current {current.get('bench')!r}")

    base_cases = cases_by_name(baseline)
    cur_cases = cases_by_name(current)
    failures = []
    checked = 0

    for name, base in sorted(base_cases.items()):
        cur = cur_cases.get(name)
        if cur is None:
            failures.append(f"case {name!r}: present in baseline, missing "
                            "from current report")
            continue
        if gates_throughput(base):
            checked += 1
            tolerance = case_tolerance(base, name, args.tolerance)
            base_rate = base["ops"] / (base["wall_ms"] / 1e3)
            if not gates_throughput(cur):
                failures.append(f"case {name!r}: baseline has timing, "
                                "current does not")
                continue
            cur_rate = cur["ops"] / (cur["wall_ms"] / 1e3)
            floor = base_rate * (1.0 - tolerance)
            verdict = "ok" if cur_rate >= floor else "REGRESSION"
            delta = (cur_rate - base_rate) / base_rate
            print(f"{name}: {cur_rate:,.0f} ops/s vs baseline "
                  f"{base_rate:,.0f} ({delta:+.1%}; floor {floor:,.0f}, "
                  f"tolerance {tolerance:.0%}) -> {verdict}")
            if cur_rate < floor:
                failures.append(
                    f"case {name!r}: throughput {cur_rate:,.0f} ops/s below "
                    f"floor {floor:,.0f} (baseline {base_rate:,.0f}, "
                    f"tolerance {tolerance:.0%})")
        if base.get("allocations") == 0:
            checked += 1
            cur_allocs = cur.get("allocations")
            if cur_allocs is None or cur_allocs > 0:
                failures.append(
                    f"case {name!r}: baseline is allocation-free, current "
                    f"reports {cur_allocs!r} allocations — the zero-alloc "
                    "steady-state contract broke")
            else:
                print(f"{name}: steady-state allocations 0 -> ok")

    report_overhead_deltas(base_cases, cur_cases)

    unbaselined = sorted(set(cur_cases) - set(base_cases))
    if unbaselined:
        print(f"\n{len(unbaselined)} case(s) have no baseline entry and "
              "were not gated:")
        for name in unbaselined:
            print(f"  ? {name}")
        if args.strict:
            failures.append(
                f"{len(unbaselined)} current case(s) missing from the "
                f"baseline ({', '.join(repr(n) for n in unbaselined)}) — "
                "refresh bench/baselines/ or drop the cases (--strict)")

    if checked == 0:
        failures.append("baseline contains no gateable cases — refusing to "
                        "pass vacuously")
    if failures:
        print(f"\nPERF GATE FAILED ({len(failures)} problem(s)):",
              file=sys.stderr)
        for failure in failures:
            print(f"  - {failure}", file=sys.stderr)
        return 1
    print(f"\nperf gate passed: {checked} check(s) against "
          f"{os.path.basename(args.baseline)}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
